"""repro-lint: the AST invariant checkers detect violations, spare clean code,
honor suppressions, and find nothing unsuppressed in the library itself.

Each checker gets a fixture corpus of true positives and clean near-misses:
a checker that over-bans is as much a bug as one that under-detects, because
the tier-1 gate (``test_library_source_lints_clean``) would force spurious
suppressions into the library.  Error codes and annotation conventions are
documented in docs/STATIC_ANALYSIS.md.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.lint import all_codes, lint_paths, lint_source
from repro.tools.lint.cli import main as lint_main

SRC_ROOT = Path(__file__).resolve().parent.parent.parent / "src" / "repro"


def codes_in(source, select=None):
    """Unsuppressed codes the linter reports for *source*."""
    report = lint_source(textwrap.dedent(source), path="fixture.py", select=select)
    return [finding.code for finding in report.unsuppressed]


# ----------------------------------------------------------------------
# The library itself must be clean (the tier-1 gate CI re-runs as a step)
# ----------------------------------------------------------------------
def test_library_source_lints_clean():
    report = lint_paths([str(SRC_ROOT)])
    rendered = "\n".join(f.render() for f in report.unsuppressed)
    assert not report.unsuppressed, f"repro-lint findings in src/repro:\n{rendered}"
    assert report.files_scanned > 50  # the whole tree was actually scanned


def test_every_suppression_in_library_names_known_codes():
    # RPL001 is itself unsuppressible, so a clean run already proves this;
    # make the intent explicit by selecting only the engine codes.
    report = lint_paths([str(SRC_ROOT)], select="RPL0")
    assert not report.unsuppressed


# ----------------------------------------------------------------------
# Determinism checker (RPL1xx)
# ----------------------------------------------------------------------
class TestDeterminismChecker:
    def test_detects_module_level_numpy_call(self):
        assert "RPL101" in codes_in(
            """
            import numpy as np
            x = np.random.rand(3)
            """
        )

    def test_detects_aliased_numpy_random_import(self):
        # The regex lint this checker replaced could not see through aliases.
        assert "RPL101" in codes_in(
            """
            from numpy import random
            x = random.standard_normal(4)
            """
        )
        assert "RPL101" in codes_in(
            """
            import numpy.random as npr
            x = npr.permutation(10)
            """
        )

    def test_detects_stdlib_random(self):
        assert "RPL102" in codes_in(
            """
            import random
            random.seed(42)
            """
        )
        assert "RPL102" in codes_in(
            """
            from random import choice
            pick = choice([1, 2, 3])
            """
        )

    def test_detects_argless_default_rng(self):
        assert "RPL103" in codes_in(
            """
            from numpy.random import default_rng
            rng = default_rng()
            """
        )

    def test_detects_argless_seed_sequence(self):
        assert "RPL103" in codes_in(
            """
            import numpy as np
            seq = np.random.SeedSequence()
            """
        )

    def test_detects_os_entropy(self):
        assert "RPL104" in codes_in(
            """
            import os
            token = os.urandom(16)
            """
        )
        assert "RPL104" in codes_in(
            """
            import uuid
            run_id = uuid.uuid4()
            """
        )
        assert "RPL104" in codes_in(
            """
            import secrets
            token = secrets.token_hex(8)
            """
        )

    def test_detects_time_derived_seed(self):
        assert "RPL105" in codes_in(
            """
            import time
            import numpy as np
            rng = np.random.default_rng(int(time.time()))
            """
        )
        assert "RPL105" in codes_in(
            """
            import time
            from repro.optimizers import build_optimizer
            optimizer = build_optimizer("magma", seed=time.time_ns())
            """
        )

    def test_clean_seeded_constructors(self):
        clean = """
            import numpy as np
            from numpy.random import default_rng
            from repro.utils.rng import ensure_rng

            def build(seed):
                rng: np.random.Generator = ensure_rng(seed)
                seq = np.random.SeedSequence(seed)
                a = np.random.default_rng(seed)
                b = default_rng(seed)
                return rng, seq, a, b
            """
        assert codes_in(clean) == []

    def test_clean_generator_method_calls(self):
        # self.rng.random(...) is a Generator method, not module-level entropy.
        assert (
            codes_in(
                """
            class Sampler:
                def __init__(self, rng):
                    self.rng = rng

                def draw(self, size):
                    return self.rng.random(size)
            """
            )
            == []
        )

    def test_clean_time_outside_seed_position(self):
        # Wall-clock timing of a run is fine; only seeds are banned.
        assert (
            codes_in(
                """
            import time

            def elapsed(start):
                return time.time() - start
            """
            )
            == []
        )


# ----------------------------------------------------------------------
# Lock discipline checker (RPL2xx)
# ----------------------------------------------------------------------
LOCKED_CLASS = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._jobs = {{}}  # guarded-by: _lock

        def put(self, key, value):
            {put_body}
"""


class TestLockDisciplineChecker:
    def test_detects_unguarded_assignment(self):
        source = LOCKED_CLASS.format(put_body="self._jobs[key] = value")
        assert "RPL201" in codes_in(source)

    def test_detects_unguarded_mutator_call(self):
        source = LOCKED_CLASS.format(put_body="self._jobs.setdefault(key, value)")
        assert "RPL201" in codes_in(source)

    def test_clean_mutation_under_lock(self):
        source = LOCKED_CLASS.format(
            put_body="with self._lock:\n                self._jobs[key] = value"
        )
        assert codes_in(source) == []

    def test_init_is_exempt(self):
        # Re-assigning the guarded dict during construction is fine: the
        # object is not shared yet.
        assert (
            codes_in(
                """
            import threading

            class Store:
                def __init__(self, seed_jobs):
                    self._lock = threading.Lock()
                    self._jobs = {}  # guarded-by: _lock
                    for key, value in seed_jobs.items():
                        self._jobs[key] = value
            """
            )
            == []
        )

    def test_holds_lock_helper_may_mutate(self):
        assert (
            codes_in(
                """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):  # holds-lock: _lock
                    self._count += 1
            """
            )
            == []
        )

    def test_holds_lock_reacquire_is_deadlock(self):
        assert "RPL203" in codes_in(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def _bump_locked(self):  # holds-lock: _lock
                    with self._lock:
                        self._count += 1
            """
        )

    def test_unknown_lock_annotation_rejected(self):
        assert "RPL202" in codes_in(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = {}  # guarded-by: _mutex
            """
        )

    def test_acquires_lock_method_must_take_it(self):
        assert "RPL204" in codes_in(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):  # acquires-lock: _lock
                    return 0
            """
        )
        assert (
            codes_in(
                """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def flush(self):  # acquires-lock: _lock
                    with self._lock:
                        return 0
            """
            )
            == []
        )

    def test_closure_does_not_inherit_lock_context(self):
        # A callback defined under the lock may run after it is released.
        assert "RPL201" in codes_in(
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = {}  # guarded-by: _lock

                def deferred(self, key, value):
                    with self._lock:
                        def later():
                            self._jobs[key] = value
                        return later
            """
        )


# ----------------------------------------------------------------------
# RPC frame safety checker (RPL3xx)
# ----------------------------------------------------------------------
RPC_PREAMBLE = textwrap.dedent(
    """
    import pickle

    def recv_frame(sock):
        return sock.recv(4096)

    def send_frame(sock, payload):
        sock.sendall(payload)

    def decode(sock):
        # rpc-frame: decoder
        return pickle.loads(recv_frame(sock))

    def encode(sock, message):
        # rpc-frame: encoder allow=ok,result
        send_frame(sock, pickle.dumps(message))

    def authenticate(conn):
        # rpc-frame: auth-gate
        return recv_frame(conn) == b"token"
    """
)


def rpc_codes(body):
    """Lint the RPC fixture preamble plus a dedented handler *body*."""
    return codes_in(RPC_PREAMBLE + textwrap.dedent(body))


class TestRpcFrameChecker:
    def test_detects_unpickle_outside_decoder(self):
        assert "RPL301" in rpc_codes(
            """
            def sneak(sock):
                return pickle.loads(recv_frame(sock))
            """
        )

    def test_detects_pickle_dumps_outside_encoder(self):
        assert "RPL305" in rpc_codes(
            """
            def sneak_out(sock, message):
                send_frame(sock, pickle.dumps(message))
            """
        )

    def test_detects_unpickle_before_auth(self):
        assert "RPL302" in rpc_codes(
            """
            def handle(conn):
                message = decode(conn)
                if not authenticate(conn):
                    return
                return message
            """
        )

    def test_detects_discarded_auth_result(self):
        assert "RPL302" in rpc_codes(
            """
            def handle(conn):
                authenticate(conn)
                return decode(conn)
            """
        )

    def test_detects_handler_without_auth(self):
        assert "RPL303" in rpc_codes(
            """
            def handle(conn):
                return decode(conn)
            """
        )

    def test_detects_off_allowlist_frame_op(self):
        assert "RPL304" in rpc_codes(
            """
            def reply(sock):
                encode(sock, {"op": "exec", "cmd": "rm -rf /"})
            """
        )

    def test_detects_frame_without_op(self):
        assert "RPL304" in rpc_codes(
            """
            def reply(sock):
                encode(sock, {"payload": 123})
            """
        )

    def test_detects_frombuffer_outside_decoder(self):
        assert "RPL306" in rpc_codes(
            """
            import numpy as np

            def sneak_array(sock):
                return np.frombuffer(recv_frame(sock), dtype=np.float64)
            """
        )

    def test_detects_ndarray_buffer_alias_outside_decoder(self):
        assert "RPL306" in rpc_codes(
            """
            import numpy as np

            def sneak_alias(sock):
                raw = recv_frame(sock)
                return np.ndarray((len(raw) // 8,), dtype=np.float64, buffer=raw)
            """
        )

    def test_detects_recv_into_array_outside_decoder(self):
        assert "RPL306" in rpc_codes(
            """
            import numpy as np

            def sneak_fill(sock, shape):
                array = np.empty(shape, dtype=np.float64)
                sock.recv_into(memoryview(array).cast("B"))
                return array
            """
        )

    def test_ndarray_decode_inside_decoder_is_clean(self):
        assert (
            rpc_codes(
                """
            import numpy as np

            def decode_array(sock, shape):
                # rpc-frame: decoder
                array = np.empty(shape, dtype=np.float64)
                sock.recv_into(memoryview(array).cast("B"))
                return array
            """
            )
            == []
        )

    def test_ndarray_without_buffer_keyword_is_clean(self):
        assert (
            rpc_codes(
                """
            import numpy as np

            def build(shape):
                return np.ndarray(shape, dtype=np.float64)
            """
            )
            == []
        )

    def test_clean_auth_then_decode_handler(self):
        assert (
            rpc_codes(
                """
            def handle(conn):
                if not authenticate(conn):
                    return None
                message = decode(conn)
                encode(conn, {"op": "ok"})
                return message
            """
            )
            == []
        )

    def test_module_without_pickle_is_ignored(self):
        assert (
            codes_in(
                """
            def handle(conn):
                return conn.recv(4096)
            """
            )
            == []
        )


# ----------------------------------------------------------------------
# Resource lifecycle checker (RPL4xx)
# ----------------------------------------------------------------------
class TestResourceLifecycleChecker:
    def test_detects_discarded_socket(self):
        assert "RPL402" in codes_in(
            """
            import socket

            def poke(host, port):
                socket.create_connection((host, port), timeout=1.0)
            """
        )

    def test_detects_unclosed_bound_resource(self):
        assert "RPL401" in codes_in(
            """
            def read(path):
                handle = open(path)
                return handle.read()
            """
        )

    def test_clean_with_statement(self):
        assert (
            codes_in(
                """
            def read(path):
                with open(path) as handle:
                    return handle.read()
            """
            )
            == []
        )

    def test_clean_finally_paired_close(self):
        assert (
            codes_in(
                """
            import socket

            def probe(host, port):
                sock = socket.create_connection((host, port), timeout=1.0)
                try:
                    return sock.recv(1)
                finally:
                    sock.close()
            """
            )
            == []
        )

    def test_clean_immediate_close(self):
        assert (
            codes_in(
                """
            import socket

            def wake(host, port):
                socket.create_connection((host, port), timeout=0.2).close()
            """
            )
            == []
        )

    def test_clean_ownership_transfers(self):
        # Returning, storing on self, and handing to another call all move
        # responsibility for the close elsewhere.
        assert (
            codes_in(
                """
            import socket
            import threading

            class Server:
                def listen(self, host, port):
                    self.listener = socket.create_server((host, port))

                def accept_loop(self, handler):
                    conn, _ = self.listener.accept()
                    thread = threading.Thread(target=handler, args=(conn,))
                    thread.start()

            def connect(host, port):
                return socket.create_connection((host, port))
            """
            )
            == []
        )

    def test_detects_unterminated_pool(self):
        assert "RPL401" in codes_in(
            """
            import multiprocessing

            def run(tasks):
                pool = multiprocessing.Pool(4)
                return pool.map(len, tasks)
            """
        )


# ----------------------------------------------------------------------
# Exception policy checker (RPL5xx)
# ----------------------------------------------------------------------
class TestExceptionPolicyChecker:
    def test_detects_bare_except(self):
        assert "RPL501" in codes_in(
            """
            def risky(task):
                try:
                    return task()
                except:
                    return None
            """
        )

    def test_detects_silent_broad_handler(self):
        assert "RPL502" in codes_in(
            """
            def risky(task):
                try:
                    return task()
                except Exception:
                    pass
            """
        )
        assert "RPL502" in codes_in(
            """
            def risky(task):
                try:
                    return task()
                except (ValueError, Exception):
                    return False
            """
        )

    def test_clean_broad_handler_that_records(self):
        assert (
            codes_in(
                """
            def risky(task, errors):
                try:
                    return task()
                except Exception as error:
                    errors.append(error)
                    return None
            """
            )
            == []
        )

    def test_clean_narrow_handler(self):
        assert (
            codes_in(
                """
            def risky(task):
                try:
                    return task()
                except (ValueError, OSError):
                    return None
            """
            )
            == []
        )


# ----------------------------------------------------------------------
# Suppressions and the engine
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_line_suppression_honored(self):
        source = """
            import random
            random.seed(42)  # repro-lint: disable=RPL102 — fixture needs stdlib stream
            """
        report = lint_source(textwrap.dedent(source), path="fixture.py")
        assert not report.unsuppressed
        assert [f.code for f in report.suppressed] == ["RPL102"]

    def test_prefix_suppression_honored(self):
        source = """
            import random
            random.seed(42)  # repro-lint: disable=RPL1
            """
        assert codes_in(source) == []

    def test_file_level_suppression_honored(self):
        source = """
            # repro-lint: disable-file=RPL102 — this module owns the legacy stream
            import random

            def a():
                random.seed(1)

            def b():
                random.random()
            """
        report = lint_source(textwrap.dedent(source), path="fixture.py")
        assert not report.unsuppressed
        assert len(report.suppressed) == 2

    def test_suppression_only_covers_named_code(self):
        source = """
            import random
            random.seed(42)  # repro-lint: disable=RPL101
            """
        assert "RPL102" in codes_in(source)

    def test_unknown_code_suppression_rejected(self):
        source = """
            x = 1  # repro-lint: disable=RPL999
            """
        assert "RPL001" in codes_in(source)

    def test_rpl001_cannot_be_suppressed(self):
        source = """
            x = 1  # repro-lint: disable=RPL999,RPL001
            """
        assert "RPL001" in codes_in(source)

    def test_syntax_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="fixture.py")
        assert [f.code for f in report.findings] == ["RPL002"]

    def test_select_filters_by_prefix(self):
        source = """
            import random

            def risky(task):
                try:
                    return task()
                except Exception:
                    pass
                random.seed(42)
            """
        assert codes_in(source, select="RPL1") == ["RPL102"]
        assert codes_in(source, select="RPL5") == ["RPL502"]
        assert set(codes_in(source, select="RPL1,RPL5")) == {"RPL102", "RPL502"}

    def test_code_tables_are_unique_and_documented(self):
        codes = all_codes()
        assert len(codes) >= 18
        for code, description in codes.items():
            assert code.startswith("RPL") and len(code) == 6
            assert description


# ----------------------------------------------------------------------
# CLI (repro-magma lint / python -m repro.tools.lint)
# ----------------------------------------------------------------------
class TestLintCli:
    @pytest.fixture()
    def bad_file(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import random\nrandom.seed(1)\n", encoding="utf-8")
        return path

    def test_text_output_and_exit_status(self, bad_file, capsys):
        status = lint_main([str(bad_file)])
        out = capsys.readouterr().out
        assert status == 1
        assert "RPL102" in out
        assert "bad.py:2:1" in out

    def test_json_output_and_artifact(self, bad_file, tmp_path, capsys):
        artifact = tmp_path / "report.json"
        status = lint_main([str(bad_file), "--format", "json", "--out", str(artifact)])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["files_scanned"] == 1
        assert payload["summary"] == {"RPL102": 1}
        assert payload["findings"][0]["code"] == "RPL102"
        assert json.loads(artifact.read_text(encoding="utf-8")) == payload

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("VALUE = 1\n", encoding="utf-8")
        assert lint_main([str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_select_gate(self, bad_file, capsys):
        assert lint_main([str(bad_file), "--select", "RPL4"]) == 0
        assert lint_main([str(bad_file), "--select", "RPL1"]) == 1
        capsys.readouterr()

    def test_repro_magma_lint_subcommand(self, bad_file, capsys):
        from repro.cli import main as magma_main

        status = magma_main(["lint", str(bad_file)])
        assert status == 1
        assert "RPL102" in capsys.readouterr().out

    def test_list_codes(self, capsys):
        assert lint_main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        assert "RPL101" in out and "RPL502" in out


# ----------------------------------------------------------------------
# Diagnostics checker (RPL6xx)
# ----------------------------------------------------------------------
class TestDiagnosticsChecker:
    def test_detects_print_in_library_code(self):
        report = lint_source(
            'def run():\n    print("done")\n', path="src/repro/core/framework.py"
        )
        assert [f.code for f in report.unsuppressed] == ["RPL601"]

    def test_detects_logging_import_in_library_code(self):
        report = lint_source(
            "import logging\n", path="src/repro/service/service.py"
        )
        assert [f.code for f in report.unsuppressed] == ["RPL602"]
        report = lint_source(
            "from logging import getLogger\n", path="src/repro/service/service.py"
        )
        assert [f.code for f in report.unsuppressed] == ["RPL602"]

    def test_cli_entry_points_may_print(self):
        for path in ("src/repro/cli.py", "src/repro/tools/lint/__main__.py"):
            report = lint_source('print("usage: ...")\n', path=path)
            assert not report.unsuppressed, path

    def test_obs_package_may_print_but_not_import_logging(self):
        report = lint_source(
            'def render():\n    print("table")\n', path="src/repro/obs/flight.py"
        )
        assert not report.unsuppressed
        report = lint_source("import logging\n", path="src/repro/obs/trace.py")
        assert [f.code for f in report.unsuppressed] == ["RPL602"]

    def test_shadowed_print_and_submodule_imports_are_clean(self):
        # A local variable named print-like attribute call is not print().
        report = lint_source(
            "class Report:\n"
            "    def print(self):\n"
            "        return 1\n"
            "def run(report):\n"
            "    report.print()\n",
            path="src/repro/analysis/reporting.py",
        )
        assert not report.unsuppressed

    def test_suppression_comment_is_honored(self):
        report = lint_source(
            'print("x")  # repro-lint: disable=RPL601 — fixture rationale\n',
            path="src/repro/core/framework.py",
        )
        assert not report.unsuppressed
        assert [f.code for f in report.suppressed] == ["RPL601"]
