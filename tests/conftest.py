"""Shared fixtures for the test suite.

The fixtures build deliberately small problems (few jobs, few cores, small
sampling budgets) so the whole suite stays fast while still exercising every
code path end to end.
"""

from __future__ import annotations

import pytest

from repro.accelerator import AcceleratorPlatform, SubAcceleratorConfig, build_setting
from repro.core.analyzer import JobAnalyzer
from repro.core.evaluator import MappingEvaluator
from repro.costmodel import DataflowStyle
from repro.utils.rng import clear_global_seed
from repro.workloads import TaskType, build_task_workload
from repro.workloads.groups import JobGroup


@pytest.fixture(autouse=True)
def _isolated_seed_policy():
    """No session seed leaks between tests.

    CLI commands install the resolved ``--seed`` as the process-wide session
    seed (see docs/DETERMINISM.md); a test that runs ``main([...])`` must not
    silently seed every later test's "unseeded" paths.
    """
    clear_global_seed()
    yield
    clear_global_seed()


@pytest.fixture(autouse=True)
def _isolated_observability():
    """No tracer/metrics state leaks between tests.

    The tracer and the metrics registry are process-local singletons
    (docs/OBSERVABILITY.md); a test that enables tracing, points it at a
    sink, or asserts on warning events must not see another test's records
    — and must not leave tracing on for the rest of the suite.
    """
    from repro.obs import configure_tracing, get_tracer
    from repro.obs.trace import DEFAULT_RING_CAPACITY

    tracer = get_tracer()
    tracer.clear()
    yield
    configure_tracing(enabled=False, sink_path=None, ring_capacity=DEFAULT_RING_CAPACITY)
    tracer.clear()


@pytest.fixture()
def small_platform() -> AcceleratorPlatform:
    """A tiny 2-core heterogeneous platform used by most core/optimizer tests."""
    subs = (
        SubAcceleratorConfig(name="hb0", pe_rows=32, pe_cols=64, dataflow=DataflowStyle.HB, sg_kilobytes=146),
        SubAcceleratorConfig(name="lb0", pe_rows=32, pe_cols=64, dataflow=DataflowStyle.LB, sg_kilobytes=110),
    )
    return AcceleratorPlatform(name="tiny", sub_accelerators=subs, system_bandwidth_gbps=16.0)


@pytest.fixture()
def s2_platform() -> AcceleratorPlatform:
    """The paper's S2 setting at 16 GB/s."""
    return build_setting("S2", 16.0)


@pytest.fixture()
def mix_group(small_platform) -> JobGroup:
    """A small Mix-task group sized for the tiny platform."""
    return build_task_workload(
        TaskType.MIX,
        group_size=12,
        seed=0,
        num_sub_accelerators=small_platform.num_sub_accelerators,
    )[0]


@pytest.fixture()
def vision_group(small_platform) -> JobGroup:
    """A small Vision-task group."""
    return build_task_workload(
        TaskType.VISION,
        group_size=12,
        seed=1,
        num_sub_accelerators=small_platform.num_sub_accelerators,
    )[0]


@pytest.fixture()
def analysis_table(small_platform, mix_group):
    """Job analysis table for the tiny platform / mix group pair."""
    return JobAnalyzer(small_platform).analyze(mix_group)


@pytest.fixture()
def evaluator(small_platform, mix_group) -> MappingEvaluator:
    """A throughput evaluator with a modest sampling budget."""
    return MappingEvaluator(mix_group, small_platform, objective="throughput", sampling_budget=300)
