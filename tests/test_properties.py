"""Property-based tests (hypothesis) on the core data structures and invariants.

These cover the invariants the rest of the system relies on:

* every encoding decodes to a permutation-complete mapping and the
  encode/decode round trip is stable,
* the bandwidth allocator never finishes before either the compute bound or
  the traffic bound, never over-allocates the system bandwidth, and is
  invariant to the core order,
* the cost model's estimates stay positive, bounded, and monotone in the
  obvious directions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analyzer import JobAnalysisTable
from repro.core.bw_allocator import BandwidthAllocator
from repro.core.encoding import MappingCodec
from repro.costmodel import AnalyticalCostModel
from repro.workloads.layers import conv2d, fully_connected

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
problem_shapes = st.tuples(
    st.integers(min_value=1, max_value=12),  # jobs
    st.integers(min_value=1, max_value=5),   # cores
)


@st.composite
def encodings(draw):
    """A codec plus a raw (possibly out-of-domain) candidate vector."""
    num_jobs, num_cores = draw(problem_shapes)
    codec = MappingCodec(num_jobs=num_jobs, num_sub_accelerators=num_cores)
    raw = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False),
            min_size=codec.encoding_length,
            max_size=codec.encoding_length,
        )
    )
    return codec, np.asarray(raw)


@st.composite
def scheduling_problems(draw):
    """A random mapping plus a consistent analysis table and system bandwidth."""
    num_jobs, num_cores = draw(problem_shapes)
    codec = MappingCodec(num_jobs=num_jobs, num_sub_accelerators=num_cores)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    latency = rng.uniform(1.0, 5_000.0, size=(num_jobs, num_cores))
    bandwidth = rng.uniform(0.05, 64.0, size=(num_jobs, num_cores))
    table = JobAnalysisTable(
        latency_cycles=latency,
        required_bw_gbps=bandwidth,
        energy_joules=np.ones_like(latency),
        dram_traffic_bytes=latency * bandwidth,
        job_flops=rng.uniform(1e3, 1e9, size=num_jobs),
    )
    mapping = codec.decode(codec.random_encoding(rng))
    system_bw = draw(st.floats(min_value=0.5, max_value=256.0, allow_nan=False))
    return mapping, table, system_bw


# ----------------------------------------------------------------------
# Encoding properties
# ----------------------------------------------------------------------
class TestEncodingProperties:
    @given(encodings())
    @settings(max_examples=60, deadline=None)
    def test_decode_is_a_partition_of_all_jobs(self, data):
        codec, raw = data
        mapping = codec.decode(raw)
        jobs = sorted(j for core in mapping.assignments for j in core)
        assert jobs == list(range(codec.num_jobs))

    @given(encodings())
    @settings(max_examples=60, deadline=None)
    def test_repair_is_idempotent(self, data):
        codec, raw = data
        repaired_once = codec.repair(raw)
        repaired_twice = codec.repair(repaired_once)
        assert np.allclose(repaired_once, repaired_twice)

    @given(encodings())
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, data):
        codec, raw = data
        mapping = codec.decode(raw)
        recovered = codec.decode(codec.encode(mapping))
        assert recovered.assignments == mapping.assignments

    @given(encodings())
    @settings(max_examples=60, deadline=None)
    def test_selection_genes_stay_in_core_range(self, data):
        codec, raw = data
        repaired = codec.repair(raw)
        selection = repaired[: codec.num_jobs]
        assert np.all((selection >= 0) & (selection <= codec.num_sub_accelerators - 1))


# ----------------------------------------------------------------------
# Bandwidth-allocator properties
# ----------------------------------------------------------------------
class TestAllocatorProperties:
    @given(scheduling_problems())
    @settings(max_examples=40, deadline=None)
    def test_makespan_respects_lower_bounds(self, problem):
        mapping, table, system_bw = problem
        allocator = BandwidthAllocator(system_bw)
        makespan = allocator.makespan_cycles(mapping, table)

        # Compute bound: the busiest core's summed no-stall latencies.
        compute_bound = max(
            (sum(table.latency_cycles[j, core] for j in jobs) for core, jobs in enumerate(mapping.assignments)),
            default=0.0,
        )
        # Traffic bound: all bytes must cross the shared link.
        traffic_bound = sum(
            table.latency_cycles[j, core] * table.required_bw_gbps[j, core]
            for core, jobs in enumerate(mapping.assignments)
            for j in jobs
        ) / system_bw
        assert makespan >= compute_bound - 1e-6
        assert makespan >= traffic_bound - 1e-6

    @given(scheduling_problems())
    @settings(max_examples=40, deadline=None)
    def test_fast_path_matches_recorded_schedule(self, problem):
        mapping, table, system_bw = problem
        allocator = BandwidthAllocator(system_bw)
        fast = allocator.makespan_cycles(mapping, table)
        schedule = allocator.allocate(mapping, table)
        assert fast == pytest.approx(schedule.makespan_cycles, rel=1e-9)
        schedule.validate()

    @given(scheduling_problems())
    @settings(max_examples=40, deadline=None)
    def test_never_allocates_more_than_system_bandwidth(self, problem):
        mapping, table, system_bw = problem
        schedule = BandwidthAllocator(system_bw).allocate(mapping, table)
        for segment in schedule.segments:
            assert segment.total_allocated_gbps <= system_bw * (1 + 1e-9)

    @given(scheduling_problems())
    @settings(max_examples=40, deadline=None)
    def test_every_job_scheduled_exactly_once(self, problem):
        mapping, table, system_bw = problem
        schedule = BandwidthAllocator(system_bw).allocate(mapping, table)
        assert sorted(job.job_index for job in schedule.jobs) == list(range(table.num_jobs))

    @given(scheduling_problems())
    @settings(max_examples=30, deadline=None)
    def test_more_bandwidth_never_slows_the_schedule(self, problem):
        mapping, table, system_bw = problem
        tight = BandwidthAllocator(system_bw).makespan_cycles(mapping, table)
        generous = BandwidthAllocator(system_bw * 4).makespan_cycles(mapping, table)
        assert generous <= tight * (1 + 1e-9)


# ----------------------------------------------------------------------
# Cost-model properties
# ----------------------------------------------------------------------
layer_dims = st.tuples(
    st.integers(min_value=1, max_value=8),     # batch
    st.sampled_from([8, 16, 32, 64, 128, 256]),  # output channels
    st.sampled_from([3, 8, 16, 64, 128]),        # input channels
    st.sampled_from([1, 7, 14, 28, 56]),         # spatial
    st.sampled_from([1, 3]),                     # kernel
)


class TestCostModelProperties:
    @given(layer_dims, st.sampled_from(["HB", "LB"]))
    @settings(max_examples=60, deadline=None)
    def test_estimates_are_positive_and_bounded(self, dims, style):
        n, k, c, y, kernel = dims
        layer = conv2d(n, k, c, y, y, kernel, kernel)
        model = AnalyticalCostModel(32, 64, style, sg_bytes=146 * 1024)
        estimate = model.evaluate(layer)
        assert estimate.no_stall_latency_cycles >= 1.0
        assert estimate.required_bw_gbps > 0
        assert estimate.dram_traffic_bytes >= layer.output_elements
        assert 0 < estimate.utilization <= 1.0
        # The array can never do more work per cycle than it has PEs.
        assert layer.macs / estimate.no_stall_latency_cycles <= model.total_pes + 1e-6

    @given(layer_dims)
    @settings(max_examples=40, deadline=None)
    def test_latency_monotone_in_batch_size(self, dims):
        n, k, c, y, kernel = dims
        model = AnalyticalCostModel(32, 64, "HB", sg_bytes=146 * 1024)
        small = model.evaluate(conv2d(n, k, c, y, y, kernel, kernel))
        large = model.evaluate(conv2d(n + 1, k, c, y, y, kernel, kernel))
        assert large.no_stall_latency_cycles >= small.no_stall_latency_cycles

    @given(
        st.integers(min_value=1, max_value=64),
        st.sampled_from([64, 128, 256, 1024]),
        st.sampled_from([64, 128, 256, 1024]),
    )
    @settings(max_examples=40, deadline=None)
    def test_fc_never_faster_on_lb_than_hb(self, batch, out_features, in_features):
        layer = fully_connected(batch, out_features, in_features)
        hb = AnalyticalCostModel(32, 64, "HB", sg_bytes=146 * 1024).evaluate(layer)
        lb = AnalyticalCostModel(32, 64, "LB", sg_bytes=110 * 1024).evaluate(layer)
        assert lb.no_stall_latency_cycles >= hb.no_stall_latency_cycles
        assert lb.required_bw_gbps <= hb.required_bw_gbps * (1 + 1e-9)
