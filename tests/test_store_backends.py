"""Backend-conformance suite for the pluggable store backends.

Every test in :class:`TestBackendConformance` runs against all three
transports — ``jsonl:``, ``sqlite:`` and ``tcp://`` (a network store backed
by SQLite) — so a behavioural divergence between backends fails the same
test three ways instead of hiding behind whichever backend a feature test
happened to use.  The URL grammar and compaction policy get their own unit
classes since they are backend-independent.
"""

import json
import threading

import pytest

from repro.service.netstore import NetworkStoreBackend, NetworkStoreServer
from repro.exceptions import ConfigurationError
from repro.utils.jsonl_store import AppendOnlyJsonlStore
from repro.utils.sqlite_store import SqliteStoreBackend
from repro.utils.storage import (
    CompactionPolicy,
    StoreUrl,
    open_store_backend,
    parse_store_url,
    record_fitness,
    render_record,
)

TOKEN = "conformance-secret"


def _record(fingerprint, fitness, **extra):
    record = {"fingerprint": fingerprint, "result": {"best_fitness": fitness}}
    record.update(extra)
    return record


@pytest.fixture(params=["jsonl", "sqlite", "tcp"])
def backend(request, tmp_path, monkeypatch):
    """One open store backend per transport; torn down after the test."""
    monkeypatch.delenv("REPRO_RPC_TOKEN", raising=False)
    if request.param == "jsonl":
        store = AppendOnlyJsonlStore(str(tmp_path / "store.jsonl"))
        yield store
        store.close()
    elif request.param == "sqlite":
        store = SqliteStoreBackend(str(tmp_path / "store.sqlite3"))
        yield store
        store.close()
    else:
        server = NetworkStoreServer(
            f"sqlite:{tmp_path / 'backing.sqlite3'}", token=TOKEN
        ).start()
        store = NetworkStoreBackend(server.host, server.port, token=TOKEN)
        yield store
        store.close()
        server.shutdown()


class TestBackendConformance:
    def test_append_iter_round_trip_preserves_order_and_content(self, backend):
        records = [_record(f"fp-{i}", float(i), payload={"i": i}) for i in range(10)]
        for record in records:
            backend.append_record(record)
        assert backend.records() == records
        assert len(backend) == 10

    def test_empty_store_reads_empty(self, backend):
        assert backend.records() == []
        assert backend.fingerprints() == set()
        assert len(backend) == 0
        assert backend.repair() == 0

    def test_fingerprints_match_full_parse(self, backend):
        for i in range(25):
            backend.append_record(_record(f"{i:032x}", float(i)))
        backend.append_record({"task_key": "no-fingerprint", "x": 1})
        assert backend.fingerprints() == {f"{i:032x}" for i in range(25)}

    def test_lookup_resolves_duplicates_to_best_fitness_ties_earliest(self, backend):
        backend.append_record(_record("fp", 5.0, tag="first"))
        backend.append_record(_record("fp", 9.0, tag="winner"))
        backend.append_record(_record("fp", 9.0, tag="late-tie"))
        backend.append_record(_record("fp", 7.0, tag="worse"))
        best = backend.lookup("fp")
        assert best["tag"] == "winner"
        assert backend.lookup("missing") is None

    def test_best_records_by_alternate_key(self, backend):
        backend.append_record({"task_key": "a", "result": {"best_fitness": 1.0}})
        backend.append_record({"task_key": "a", "result": {"best_fitness": 3.0}})
        backend.append_record({"task_key": "b", "result": {"best_fitness": 2.0}})
        best = backend.best_records(key="task_key")
        assert set(best) == {"a", "b"}
        assert record_fitness(best["a"]) == 3.0

    def test_truncate_empties_the_store(self, backend):
        backend.append_record(_record("fp", 1.0))
        backend.truncate()
        assert backend.records() == []
        assert len(backend) == 0

    def test_repair_reports_intact_count(self, backend):
        for i in range(7):
            backend.append_record(_record(f"fp-{i}", float(i)))
        assert backend.repair() == 7
        assert len(backend) == 7

    def test_records_survive_close_and_reopen(self, backend, tmp_path):
        for i in range(5):
            backend.append_record(_record(f"fp-{i}", float(i)))
        expected = backend.records()
        url = backend.url if backend.kind != "tcp" else f"{backend.url}?token={TOKEN}"
        if backend.kind != "tcp":
            backend.close()
        with open_store_backend(url) as reopened:
            assert reopened.kind == backend.kind
            assert reopened.records() == expected

    def test_concurrent_appends_never_tear_or_drop(self, backend):
        per_worker, workers = 50, 4
        errors = []

        def writer(worker):
            try:
                for i in range(per_worker):
                    backend.append_record(
                        _record(f"w{worker}-{i:04d}", float(i), worker=worker)
                    )
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert backend.repair() == per_worker * workers
        fingerprints = [record["fingerprint"] for record in backend.records()]
        assert len(fingerprints) == per_worker * workers
        assert len(set(fingerprints)) == per_worker * workers

    def test_compaction_keeps_best_per_fingerprint_and_is_idempotent(self, backend):
        for i in range(4):
            backend.append_record(_record("fp-a", float(i)))
            backend.append_record(_record("fp-b", float(10 - i)))
        backend.append_record({"task_key": "keyless", "x": 1})
        kept, dropped = backend.compact(CompactionPolicy(keep_best_per_fingerprint=True))
        assert (kept, dropped) == (3, 6)
        assert record_fitness(backend.lookup("fp-a")) == 3.0
        assert record_fitness(backend.lookup("fp-b")) == 10.0
        # Idempotent: compacting an already-compacted store drops nothing.
        assert backend.compact(CompactionPolicy(keep_best_per_fingerprint=True)) == (3, 0)

    def test_compaction_max_records_keeps_newest(self, backend):
        for i in range(10):
            backend.append_record(_record(f"fp-{i}", float(i)))
        policy = CompactionPolicy(keep_best_per_fingerprint=False, max_records=3)
        assert backend.compact(policy) == (3, 7)
        assert [r["fingerprint"] for r in backend.records()] == ["fp-7", "fp-8", "fp-9"]

    def test_describe_reports_kind_url_and_counts(self, backend):
        backend.append_record(_record("fp", 1.0))
        info = backend.describe()
        assert info["kind"] == backend.kind
        assert info["records"] == 1
        assert info["fingerprints"] == 1
        assert info["url"]

    def test_store_ops_counters_increment(self, backend):
        from repro.obs.metrics import get_metrics

        registry = get_metrics()
        labels = {"backend": backend.kind, "op": "append"}
        before = registry.value_of("repro_store_ops_total", labels)
        backend.append_record(_record("fp", 1.0))
        assert registry.value_of("repro_store_ops_total", labels) == before + 1


class TestCrossBackendMigration:
    def test_records_migrate_byte_identically_between_jsonl_and_sqlite(self, tmp_path):
        """The canonical rendering is shared, so a sqlite round trip of a
        JSONL store reproduces the original file byte for byte."""
        source = AppendOnlyJsonlStore(str(tmp_path / "source.jsonl"))
        for i in range(20):
            source.append_record(_record(f"fp-{i}", float(i), note=f"n{i}"))
        with open(source.path, "rb") as handle:
            original_bytes = handle.read()

        middle = SqliteStoreBackend(str(tmp_path / "middle.sqlite3"))
        for record in source.records():
            middle.append_record(record)
        final = AppendOnlyJsonlStore(str(tmp_path / "final.jsonl"))
        for record in middle.records():
            final.append_record(record)
        middle.close()
        with open(final.path, "rb") as handle:
            assert handle.read() == original_bytes

    def test_render_record_is_canonical_json(self):
        rendered = render_record({"b": 1, "a": [1.0, 2]})
        assert rendered == json.dumps({"b": 1, "a": [1.0, 2]}, sort_keys=True)
        assert json.loads(rendered) == {"b": 1, "a": [1.0, 2]}


class TestParseStoreUrl:
    def test_bare_path_means_jsonl(self):
        assert parse_store_url("results/run.jsonl") == StoreUrl(
            kind="jsonl", path="results/run.jsonl"
        )

    def test_explicit_jsonl_and_sqlite_schemes(self):
        assert parse_store_url("jsonl:store.jsonl").kind == "jsonl"
        assert parse_store_url("sqlite:store.sqlite3") == StoreUrl(
            kind="sqlite", path="store.sqlite3"
        )

    def test_url_style_double_slash_is_tolerated(self):
        assert parse_store_url("sqlite://db.sqlite3").path == "db.sqlite3"
        assert parse_store_url("sqlite:///abs/db.sqlite3").path == "/abs/db.sqlite3"

    def test_tcp_with_and_without_token(self):
        plain = parse_store_url("tcp://10.0.0.7:9917")
        assert (plain.kind, plain.host, plain.port, plain.token) == (
            "tcp", "10.0.0.7", 9917, None,
        )
        authed = parse_store_url("tcp://store.local:9917?token=secret")
        assert authed.token == "secret"

    def test_render_round_trips_and_elides_token(self):
        assert parse_store_url("sqlite:db").render() == "sqlite:db"
        assert parse_store_url("tcp://h:1?token=s").render() == "tcp://h:1"

    def test_unknown_scheme_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="unknown store scheme"):
            parse_store_url("sqlit:typo.db")

    def test_windows_drive_letter_is_a_path_not_a_scheme(self):
        assert parse_store_url(r"C:\stores\x.jsonl").kind == "jsonl"

    def test_malformed_tcp_and_empty_urls_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_store_url("tcp://no-port")
        with pytest.raises(ConfigurationError):
            parse_store_url("")
        with pytest.raises(ConfigurationError):
            parse_store_url("sqlite:")

    def test_open_store_backend_rejects_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            open_store_backend("redis:whatever")


class TestCompactionPolicy:
    def test_survivors_keep_best_per_fingerprint_ties_earliest(self):
        records = [
            _record("fp", 1.0, tag="a"),
            _record("fp", 2.0, tag="b"),
            _record("fp", 2.0, tag="c"),
        ]
        kept = CompactionPolicy().survivors(records)
        assert [r["tag"] for r in kept] == ["b"]

    def test_keyless_records_always_survive(self):
        records = [{"task_key": "x"}, _record("fp", 1.0), _record("fp", 2.0)]
        kept = CompactionPolicy().survivors(records)
        assert {"task_key": "x"} in kept and len(kept) == 2

    def test_max_bytes_drops_oldest_first(self):
        records = [_record(f"fp-{i}", float(i)) for i in range(5)]
        size_of_last_two = sum(
            len(render_record(r).encode()) + 1 for r in records[3:]
        )
        policy = CompactionPolicy(
            keep_best_per_fingerprint=False, max_bytes=size_of_last_two
        )
        kept = policy.survivors(records)
        assert [r["fingerprint"] for r in kept] == ["fp-3", "fp-4"]

    def test_negative_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            CompactionPolicy(max_records=-1)
        with pytest.raises(ConfigurationError):
            CompactionPolicy(max_bytes=-1)

    def test_round_trips_through_dict_and_rejects_unknown_fields(self):
        policy = CompactionPolicy(max_records=5, key="task_key")
        assert CompactionPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ConfigurationError):
            CompactionPolicy.from_dict({"max_recordz": 5})
