"""Tests for the sub-accelerator configuration."""

import pytest

from repro.accelerator import SubAcceleratorConfig
from repro.costmodel import AnalyticalCostModel, DataflowStyle, FlexibleArrayCostModel
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_requires_name(self):
        with pytest.raises(ConfigurationError):
            SubAcceleratorConfig(name="", pe_rows=32)

    def test_requires_positive_dimensions(self):
        with pytest.raises(ConfigurationError):
            SubAcceleratorConfig(name="x", pe_rows=0)

    def test_requires_positive_buffers(self):
        with pytest.raises(ConfigurationError):
            SubAcceleratorConfig(name="x", pe_rows=32, sg_kilobytes=0)

    def test_string_dataflow_is_coerced(self):
        config = SubAcceleratorConfig(name="x", pe_rows=32, dataflow="lb")
        assert config.dataflow is DataflowStyle.LB


class TestDerivedProperties:
    def test_num_pes(self):
        assert SubAcceleratorConfig(name="x", pe_rows=32, pe_cols=64).num_pes == 2048

    def test_buffer_byte_conversion(self):
        config = SubAcceleratorConfig(name="x", pe_rows=32, sg_kilobytes=146, sl_kilobytes=1)
        assert config.sg_bytes == 146 * 1024
        assert config.sl_bytes == 1024

    def test_peak_gflops(self):
        config = SubAcceleratorConfig(name="x", pe_rows=32, pe_cols=64)
        # 2048 PEs x 2 ops x 200 MHz = 819.2 GFLOP/s.
        assert config.peak_gflops == pytest.approx(819.2)

    def test_describe_contains_key_facts(self):
        config = SubAcceleratorConfig(name="sub3", pe_rows=128, dataflow=DataflowStyle.LB, sg_kilobytes=434)
        text = config.describe()
        assert "sub3" in text and "128x64" in text and "LB" in text and "434" in text


class TestCostModelConstruction:
    def test_fixed_array_builds_analytical_model(self):
        config = SubAcceleratorConfig(name="x", pe_rows=32)
        assert isinstance(config.build_cost_model(), AnalyticalCostModel)

    def test_flexible_array_builds_flexible_model(self):
        config = SubAcceleratorConfig(name="x", pe_rows=32, flexible=True)
        assert isinstance(config.build_cost_model(), FlexibleArrayCostModel)

    def test_scaled_reduces_rows_and_buffer(self):
        big = SubAcceleratorConfig(name="big", pe_rows=128, sg_kilobytes=580)
        little = big.scaled(0.5, name="little")
        assert little.pe_rows == 64
        assert little.sg_kilobytes == pytest.approx(290)
        assert little.name == "little"

    def test_scaled_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            SubAcceleratorConfig(name="x", pe_rows=32).scaled(0)
