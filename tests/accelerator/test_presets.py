"""Tests for the Table III preset accelerator settings."""

import pytest

from repro.accelerator import build_setting, list_settings
from repro.costmodel import DataflowStyle
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_six_settings_registered(self):
        assert list_settings() == ["S1", "S2", "S3", "S4", "S5", "S6"]

    def test_build_setting_case_insensitive(self):
        assert build_setting("s3").name == "S3"

    def test_unknown_setting_rejected(self):
        with pytest.raises(ConfigurationError):
            build_setting("S9")

    def test_bandwidth_override(self):
        assert build_setting("S1", 4.0).system_bandwidth_gbps == 4.0


class TestTableIIIStructure:
    """Each preset matches the row of Table III in the paper."""

    def test_s1_small_homogeneous(self):
        platform = build_setting("S1")
        assert platform.num_sub_accelerators == 4
        assert platform.is_homogeneous
        assert all(sub.pe_rows == 32 and sub.dataflow is DataflowStyle.HB for sub in platform)
        assert all(sub.sg_kilobytes == 146 for sub in platform)

    def test_s2_small_heterogeneous(self):
        platform = build_setting("S2")
        assert platform.num_sub_accelerators == 4
        styles = [sub.dataflow for sub in platform]
        assert styles.count(DataflowStyle.HB) == 3
        assert styles.count(DataflowStyle.LB) == 1
        lb = [sub for sub in platform if sub.dataflow is DataflowStyle.LB][0]
        assert lb.sg_kilobytes == 110

    def test_s3_large_homogeneous(self):
        platform = build_setting("S3")
        assert platform.num_sub_accelerators == 8
        assert platform.is_homogeneous
        assert all(sub.pe_rows == 128 and sub.sg_kilobytes == 580 for sub in platform)

    def test_s4_large_heterogeneous(self):
        platform = build_setting("S4")
        styles = [sub.dataflow for sub in platform]
        assert styles.count(DataflowStyle.HB) == 7
        assert styles.count(DataflowStyle.LB) == 1

    def test_s5_big_little(self):
        platform = build_setting("S5")
        assert platform.num_sub_accelerators == 8
        rows = sorted(sub.pe_rows for sub in platform)
        assert rows == [64, 64, 64, 64, 128, 128, 128, 128]
        assert sum(1 for sub in platform if sub.dataflow is DataflowStyle.LB) == 2

    def test_s6_scale_up_has_sixteen_cores(self):
        platform = build_setting("S6")
        assert platform.num_sub_accelerators == 16
        rows = [sub.pe_rows for sub in platform]
        assert rows.count(128) == 8 and rows.count(64) == 8

    def test_all_settings_use_64_wide_arrays(self):
        for name in list_settings():
            platform = build_setting(name)
            assert all(sub.pe_cols == 64 for sub in platform), name

    def test_default_bandwidths_by_class(self):
        assert build_setting("S1").system_bandwidth_gbps == 16.0
        assert build_setting("S2").system_bandwidth_gbps == 16.0
        for large in ("S3", "S4", "S5", "S6"):
            assert build_setting(large).system_bandwidth_gbps == 256.0

    def test_core_names_unique_within_setting(self):
        for name in list_settings():
            platform = build_setting(name)
            names = [sub.name for sub in platform]
            assert len(names) == len(set(names)), name
