"""Tests for the multi-core accelerator platform."""

import pytest

from repro.accelerator import AcceleratorPlatform, SubAcceleratorConfig
from repro.costmodel import DataflowStyle
from repro.exceptions import ConfigurationError


def _subs(count: int, rows: int = 32, dataflow=DataflowStyle.HB):
    return tuple(
        SubAcceleratorConfig(name=f"sub{i}", pe_rows=rows, dataflow=dataflow) for i in range(count)
    )


class TestValidation:
    def test_requires_at_least_one_core(self):
        with pytest.raises(ConfigurationError):
            AcceleratorPlatform(name="p", sub_accelerators=(), system_bandwidth_gbps=16)

    def test_requires_positive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            AcceleratorPlatform(name="p", sub_accelerators=_subs(2), system_bandwidth_gbps=0)

    def test_requires_unique_core_names(self):
        duplicated = (_subs(1)[0], _subs(1)[0])
        with pytest.raises(ConfigurationError):
            AcceleratorPlatform(name="p", sub_accelerators=duplicated, system_bandwidth_gbps=16)


class TestProperties:
    def test_len_iteration_indexing(self):
        platform = AcceleratorPlatform("p", _subs(4), 16)
        assert len(platform) == 4
        assert platform[2].name == "sub2"
        assert [sub.name for sub in platform] == ["sub0", "sub1", "sub2", "sub3"]

    def test_total_pes_and_peak(self):
        platform = AcceleratorPlatform("p", _subs(4), 16)
        assert platform.total_pes == 4 * 2048
        assert platform.peak_gflops == pytest.approx(4 * 819.2)

    def test_homogeneity_detection(self):
        homogeneous = AcceleratorPlatform("p", _subs(3), 16)
        mixed = AcceleratorPlatform(
            "q", _subs(2) + (SubAcceleratorConfig(name="lb", pe_rows=32, dataflow=DataflowStyle.LB),), 16
        )
        assert homogeneous.is_homogeneous
        assert not mixed.is_homogeneous

    def test_index_of(self):
        platform = AcceleratorPlatform("p", _subs(3), 16)
        assert platform.index_of("sub1") == 1
        with pytest.raises(ConfigurationError):
            platform.index_of("missing")

    def test_describe_lists_all_cores(self):
        platform = AcceleratorPlatform("p", _subs(3), 16)
        assert platform.describe().count("sub") >= 3


class TestTransforms:
    def test_with_bandwidth_returns_new_platform(self):
        platform = AcceleratorPlatform("p", _subs(2), 16)
        slower = platform.with_bandwidth(1.0)
        assert slower.system_bandwidth_gbps == 1.0
        assert platform.system_bandwidth_gbps == 16.0

    def test_with_flexible_arrays(self):
        platform = AcceleratorPlatform("p", _subs(2), 16)
        flexible = platform.with_flexible_arrays(True)
        assert all(sub.flexible for sub in flexible)
        assert not any(sub.flexible for sub in platform)
        assert flexible.name.endswith("-flex")
