"""Tests for the M3E search driver."""

import numpy as np
import pytest

from repro.core.framework import M3E, SearchResult
from repro.exceptions import OptimizationError
from repro.optimizers import MagmaOptimizer


class TestM3E:
    def test_rejects_bad_budget(self, small_platform):
        with pytest.raises(OptimizationError):
            M3E(small_platform, sampling_budget=0)

    def test_analysis_table_is_cached_per_group(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=100)
        first = explorer.analyze(mix_group)
        second = explorer.analyze(mix_group)
        assert first is second

    def test_search_returns_complete_result(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=120)
        result = explorer.search(mix_group, optimizer="magma", seed=0,
                                 optimizer_options={"population_size": 12})
        assert isinstance(result, SearchResult)
        assert result.throughput_gflops > 0
        assert result.samples_used <= 120
        assert len(result.history) == result.samples_used
        assert result.best_mapping.num_jobs == mix_group.size
        assert result.optimizer_name == "MAGMA"
        result.schedule.validate()

    def test_search_with_optimizer_instance(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=80)
        optimizer = MagmaOptimizer(seed=3, population_size=10)
        result = explorer.search(mix_group, optimizer=optimizer)
        assert result.optimizer_name == "MAGMA"
        assert result.samples_used <= 80

    def test_search_respects_per_call_budget_override(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=1000)
        result = explorer.search(
            mix_group, optimizer="random", seed=0, sampling_budget=50
        )
        assert result.samples_used <= 50 + 1

    def test_search_is_deterministic_given_seed(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=100)
        a = explorer.search(mix_group, optimizer="stdga", seed=7,
                            optimizer_options={"population_size": 10})
        b = explorer.search(mix_group, optimizer="stdga", seed=7,
                            optimizer_options={"population_size": 10})
        assert a.best_fitness == pytest.approx(b.best_fitness)
        assert np.allclose(a.best_encoding, b.best_encoding)

    def test_compare_runs_each_method_once(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=60)
        results = explorer.compare(mix_group, optimizers=["herald-like", "ai-mt-like", "random"], seed=0)
        assert set(results) == {"Herald-like", "AI-MT-like", "Random"}
        assert all(r.throughput_gflops > 0 for r in results.values())

    def test_analysis_cache_survives_group_id_reuse(self, small_platform):
        """Regression: the table cache was keyed by ``id(group)``, so a new
        group reusing a garbage-collected group's id silently received the
        wrong (stale) table."""
        import gc

        from repro.workloads import TaskType, build_task_workload

        explorer = M3E(small_platform, sampling_budget=50)

        def table_for(seed):
            group = build_task_workload(
                TaskType.MIX, group_size=8, seed=seed,
                num_sub_accelerators=small_platform.num_sub_accelerators,
            )[0]
            return explorer.analyze(group)

        # Many create/analyze/discard cycles: with id() keying, CPython
        # routinely reuses a freed group's id and returns the wrong table.
        tables = [table_for(seed) for seed in range(6)]
        gc.collect()
        for seed in range(6):
            fresh_group = build_task_workload(
                TaskType.MIX, group_size=8, seed=seed,
                num_sub_accelerators=small_platform.num_sub_accelerators,
            )[0]
            fresh = explorer.analyze(fresh_group)
            assert np.array_equal(fresh.latency_cycles, tables[seed].latency_cycles)
            assert np.array_equal(fresh.required_bw_gbps, tables[seed].required_bw_gbps)

    def test_compare_does_not_overwrite_same_named_optimizers(self, small_platform, mix_group):
        """Regression: two optimizers sharing a display name silently
        overwrote each other in the compare() results dict."""
        explorer = M3E(small_platform, sampling_budget=40)
        twins = [
            MagmaOptimizer(seed=0, population_size=8),
            MagmaOptimizer(seed=1, population_size=10),
        ]
        results = explorer.compare(mix_group, optimizers=twins, seed=0)
        assert len(results) == 2
        assert set(results) == {"MAGMA", "MAGMA#2"}
        assert all(r.throughput_gflops > 0 for r in results.values())

    def test_eval_backend_validated_and_threaded(self, small_platform, mix_group):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            M3E(small_platform, eval_backend="nope")
        explorer = M3E(small_platform, sampling_budget=50, eval_backend="scalar")
        assert explorer.build_evaluator(mix_group).backend == "scalar"

    def test_warm_start_encodings_accepted(self, small_platform, mix_group):
        explorer = M3E(small_platform, sampling_budget=60)
        evaluator = explorer.build_evaluator(mix_group)
        seed_encoding = evaluator.codec.random_encoding(rng=0)
        result = explorer.search(
            mix_group,
            optimizer="magma",
            seed=1,
            initial_encodings=seed_encoding[None, :],
            optimizer_options={"population_size": 8},
        )
        assert result.throughput_gflops > 0
