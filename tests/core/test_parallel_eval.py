"""Tests for the sharded multi-process evaluation backend.

The ``parallel`` backend must be a drop-in replacement for ``batch`` (and
therefore for the ``scalar`` oracle): bit-identical fitnesses, history,
best-encoding, and budget accounting — the worker pool is purely a
throughput device.  These tests run with small worker counts so they stay
cheap on single-core CI runners (correctness does not need real parallelism).
"""

import pickle

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.evaluator import EVAL_BACKENDS, MappingEvaluator
from repro.core.framework import M3E
from repro.core import parallel as parallel_module
from repro.core.parallel import (
    MIN_ROWS_PER_WORKER,
    EvaluatorSpec,
    ParallelEvaluationPool,
    SharedMemoryRing,
    SimulationRig,
    gather_rows,
    resolve_num_workers,
    split_chunks,
    split_shards,
)
from repro.exceptions import ConfigurationError
from repro.workloads import TaskType, build_task_workload


def _problem(setting: str, bandwidth: float, group_size: int, seed: int = 0):
    platform = build_setting(setting, bandwidth)
    group = build_task_workload(
        TaskType.MIX,
        group_size=group_size,
        seed=seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    return platform, group


def _spec_for(evaluator: MappingEvaluator) -> EvaluatorSpec:
    return EvaluatorSpec.capture(
        evaluator.codec, evaluator.batch_allocator, evaluator.table, evaluator.objective
    )


class TestEvaluatorSpec:
    def test_spec_pickles_and_rebuilds_equivalent_rig(self):
        """The spec is the worker-bootstrap contract: it must survive pickling
        and rebuild a rig that scores rows bit-identically to the original."""
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        spec = _spec_for(evaluator)
        clone = pickle.loads(pickle.dumps(spec))
        rig = clone.build_rig()
        rows = evaluator.codec.repair_batch(evaluator.codec.random_population(16, rng=3))
        assert np.array_equal(
            rig.fitnesses_for_rows(rows), evaluator._rig.fitnesses_for_rows(rows)
        )

    def test_spec_shares_table_arrays_without_copy(self):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform)
        spec = _spec_for(evaluator)
        assert spec.latency_cycles is evaluator.table.latency_cycles

    def test_resolve_num_workers(self):
        assert resolve_num_workers(3) == 3
        assert resolve_num_workers(None) >= 1
        with pytest.raises(ConfigurationError):
            resolve_num_workers(0)


class TestShardHelpers:
    """The contiguous-shard/gather policy shared by the parallel and rpc pools."""

    def test_split_is_contiguous_and_order_preserving(self):
        rows = np.arange(33 * 4, dtype=float).reshape(33, 4)
        shards = split_shards(rows, num_workers=4)
        assert len(shards) == 4
        assert np.array_equal(np.concatenate(shards), rows)
        # Contiguity: every shard is a consecutive slice of the input.
        offset = 0
        for shard in shards:
            assert np.array_equal(shard, rows[offset:offset + len(shard)])
            offset += len(shard)

    def test_split_matches_np_array_split_exactly(self):
        """The historical policy was a literal np.array_split; the extracted
        helper must not change a single shard boundary."""
        rows = np.arange(50 * 2, dtype=float).reshape(50, 2)
        expected = [s for s in np.array_split(rows, 4) if len(s)]
        observed = split_shards(rows, num_workers=4)
        assert len(observed) == len(expected)
        for got, want in zip(observed, expected):
            assert np.array_equal(got, want)

    def test_small_populations_collapse_to_one_shard(self):
        rows = np.zeros((MIN_ROWS_PER_WORKER * 2 - 1, 4))
        assert len(split_shards(rows, num_workers=8)) == 1
        assert len(split_shards(np.zeros((MIN_ROWS_PER_WORKER * 2, 4)), 8)) == 2

    def test_never_more_shards_than_workers_or_rows(self):
        rows = np.zeros((100, 4))
        assert len(split_shards(rows, num_workers=3)) == 3
        assert len(split_shards(rows, num_workers=1)) == 1
        assert len(split_shards(np.zeros((2, 4)), num_workers=8, min_rows_per_worker=1)) == 2

    def test_empty_population_yields_no_shards(self):
        assert split_shards(np.empty((0, 4)), num_workers=4) == []
        assert gather_rows([]).shape == (0,)

    def test_gather_restores_row_order(self):
        fitnesses = np.arange(33, dtype=float)
        shards = split_shards(fitnesses.reshape(33, 1), num_workers=5)
        per_shard = []
        offset = 0
        for shard in shards:
            per_shard.append(fitnesses[offset:offset + len(shard)])
            offset += len(shard)
        assert np.array_equal(gather_rows(per_shard), fitnesses)


class TestParallelEvaluationPool:
    def test_preserves_row_order_across_shards(self):
        """Sharding is contiguous and the gather must reassemble row order,
        including populations that do not divide evenly across workers."""
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        rows = evaluator.codec.repair_batch(evaluator.codec.random_population(33, rng=7))
        reference = evaluator._rig.fitnesses_for_rows(rows)
        with ParallelEvaluationPool(_spec_for(evaluator), num_workers=2) as pool:
            assert np.array_equal(pool.evaluate(rows), reference)

    def test_pool_reused_across_calls_and_restartable_after_close(self):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        rows = evaluator.codec.repair_batch(evaluator.codec.random_population(20, rng=1))
        reference = evaluator._rig.fitnesses_for_rows(rows)
        pool = ParallelEvaluationPool(_spec_for(evaluator), num_workers=2)
        try:
            assert np.array_equal(pool.evaluate(rows), reference)
            assert pool.is_running
            pool.close()
            assert not pool.is_running
            # A closed pool lazily restarts when used again.
            assert np.array_equal(pool.evaluate(rows), reference)
        finally:
            pool.close()

    def test_empty_population_needs_no_workers(self):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform)
        pool = ParallelEvaluationPool(_spec_for(evaluator), num_workers=2)
        out = pool.evaluate(np.empty((0, evaluator.codec.encoding_length)))
        assert out.shape == (0,)
        assert not pool.is_running  # nothing dispatched, nothing started
        pool.close()


class TestParallelBackendEquivalence:
    @pytest.mark.parametrize("setting,bandwidth,group_size,objective", [
        ("S1", 16.0, 10, "throughput"),
        ("S2", 2.0, 12, "latency"),
        ("S3", 64.0, 16, "throughput"),
        ("S2", 16.0, 12, "energy"),  # needs_mapping objective inside workers
    ])
    def test_population_evaluation_bitwise_identical_to_batch(
        self, setting, bandwidth, group_size, objective
    ):
        """Property: the parallel backend matches batch bit for bit —
        fitnesses, history, budget, and best encoding."""
        platform, group = _problem(setting, bandwidth, group_size)
        batch = MappingEvaluator(group, platform, objective=objective,
                                 sampling_budget=400, backend="batch")
        parallel = MappingEvaluator(group, platform, objective=objective,
                                    sampling_budget=400, backend="parallel",
                                    num_workers=2)
        rng = np.random.default_rng(11)
        try:
            for _ in range(3):
                population = batch.codec.random_population(30, rng)
                assert np.array_equal(
                    batch.evaluate_population(population),
                    parallel.evaluate_population(population),
                )
            assert batch.history == parallel.history
            assert batch.samples_used == parallel.samples_used
            assert np.array_equal(batch.best_encoding, parallel.best_encoding)
            assert batch.best_fitness == parallel.best_fitness
        finally:
            parallel.close()

    def test_out_of_domain_population_identical_to_batch(self):
        """Continuous optimizers feed raw real vectors; repair happens in the
        main process, so workers and the batch path must agree bit for bit."""
        platform, group = _problem("S2", 16.0, 10)
        batch = MappingEvaluator(group, platform, backend="batch")
        parallel = MappingEvaluator(group, platform, backend="parallel", num_workers=2)
        rng = np.random.default_rng(5)
        population = rng.normal(scale=4.0, size=(40, batch.codec.encoding_length))
        try:
            assert np.array_equal(
                batch.evaluate_population(population, count_samples=False),
                parallel.evaluate_population(population, count_samples=False),
            )
        finally:
            parallel.close()

    def test_budget_truncation_identical_to_batch(self):
        platform, group = _problem("S2", 16.0, 10)
        batch = MappingEvaluator(group, platform, sampling_budget=7, backend="batch")
        parallel = MappingEvaluator(group, platform, sampling_budget=7,
                                    backend="parallel", num_workers=2)
        population = batch.codec.random_population(10, rng=0)
        try:
            assert np.array_equal(
                batch.evaluate_population(population),
                parallel.evaluate_population(population),
            )
            assert parallel.samples_used == 7
            assert batch.history == parallel.history
        finally:
            parallel.close()

    def test_cache_merges_into_main_process(self):
        """Worker results must land in the main-process memo cache: a repeat
        generation is served without any live workers at all."""
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform, backend="parallel", num_workers=2)
        population = evaluator.codec.random_population(24, rng=4)
        first = evaluator.evaluate_population(population, count_samples=False)
        assert evaluator._pool.is_running  # 24 rows -> two shards, real dispatch
        assert len(evaluator._fitness_cache) == 24
        evaluator.close()
        # Every row is now memoized: re-evaluating must not restart the pool.
        second = evaluator.evaluate_population(population, count_samples=False)
        assert np.array_equal(first, second)
        assert not evaluator._pool.is_running

    def test_small_populations_run_inline_without_starting_workers(self):
        """A single shard gains nothing from IPC: tiny generations must not
        pay pool startup (and must still match the batch backend)."""
        platform, group = _problem("S1", 16.0, 8)
        batch = MappingEvaluator(group, platform, backend="batch")
        parallel = MappingEvaluator(group, platform, backend="parallel", num_workers=4)
        population = batch.codec.random_population(10, rng=2)
        assert np.array_equal(
            batch.evaluate_population(population, count_samples=False),
            parallel.evaluate_population(population, count_samples=False),
        )
        assert not parallel._pool.is_running
        parallel.close()

    def test_single_evaluate_shares_cache_without_dispatch(self):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform, backend="parallel", num_workers=2)
        encoding = evaluator.codec.random_encoding(rng=0)
        fitness = evaluator.evaluate(encoding, count_sample=False)
        assert not evaluator._pool.is_running  # scalar calls stay in process
        batch = MappingEvaluator(group, platform, backend="batch")
        assert fitness == batch.evaluate(encoding, count_sample=False)
        evaluator.close()

    def test_search_results_identical_to_batch(self):
        """End to end: a full MAGMA search is backend-invariant."""
        platform, group = _problem("S2", 16.0, 12)
        results = {}
        for backend in ("batch", "parallel"):
            explorer = M3E(
                platform,
                sampling_budget=150,
                eval_backend=backend,
                eval_workers=2 if backend == "parallel" else None,
            )
            results[backend] = explorer.search(
                group, optimizer="magma", seed=13,
                optimizer_options={"population_size": 10},
            )
        assert results["batch"].best_fitness == results["parallel"].best_fitness
        assert np.array_equal(
            results["batch"].best_encoding, results["parallel"].best_encoding
        )
        assert results["batch"].history == results["parallel"].history


class TestConfiguration:
    def test_parallel_listed_as_backend(self):
        assert "parallel" in EVAL_BACKENDS

    def test_rejects_workers_on_other_backends(self):
        platform, group = _problem("S1", 16.0, 8)
        with pytest.raises(ConfigurationError):
            MappingEvaluator(group, platform, backend="batch", num_workers=2)
        with pytest.raises(ConfigurationError):
            M3E(platform, eval_backend="batch", eval_workers=2)

    def test_rejects_non_positive_worker_count(self):
        platform, group = _problem("S1", 16.0, 8)
        with pytest.raises(ConfigurationError):
            MappingEvaluator(group, platform, backend="parallel", num_workers=0)


class TestWorkStealingProperties:
    """Work-stealing dispatch must be invisible in the results.

    The property under test: for every chunk size, transport (shared memory
    or pickle), and fault schedule (slow workers, a worker killed
    mid-chunk), the gathered fitnesses are bit-identical to the in-process
    batch sweep — chunking and steal order are pure throughput devices.
    """

    @pytest.fixture()
    def rig_and_rows(self):
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        spec = _spec_for(evaluator)
        rows = evaluator.codec.repair_batch(evaluator.codec.random_population(73, rng=5))
        return spec, rows, spec.build_rig().fitnesses_for_rows(rows)

    @pytest.fixture(autouse=True)
    def _reset_fault_seams(self):
        yield
        parallel_module._FAULT_DELAY_S = 0.0
        parallel_module._FAULT_KILL_CHUNK_START = None

    def test_split_chunks_contract(self):
        assert split_chunks(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert split_chunks(8, 8) == [(0, 8)]
        assert split_chunks(0, 16) == []
        with pytest.raises(ConfigurationError):
            split_chunks(10, 0)

    @pytest.mark.parametrize("use_shm", [True, False])
    @pytest.mark.parametrize("chunk_rows", [1, 3, 7, 16, 50])
    def test_arbitrary_chunk_sizes_bit_identical(self, rig_and_rows, use_shm, chunk_rows):
        spec, rows, reference = rig_and_rows
        with ParallelEvaluationPool(
            spec, num_workers=3, chunk_rows=chunk_rows, use_shared_memory=use_shm
        ) as pool:
            assert np.array_equal(pool.evaluate(rows), reference)

    @pytest.mark.parametrize("use_shm", [True, False])
    def test_slow_workers_bit_identical(self, rig_and_rows, use_shm):
        spec, rows, reference = rig_and_rows
        parallel_module._FAULT_DELAY_S = 0.01
        with ParallelEvaluationPool(
            spec, num_workers=3, chunk_rows=7, use_shared_memory=use_shm
        ) as pool:
            assert np.array_equal(pool.evaluate(rows), reference)

    @pytest.mark.parametrize("use_shm", [True, False])
    def test_killed_worker_recovers_bit_identical(self, rig_and_rows, use_shm):
        """The worker holding the chunk at row 14 kills itself mid-task: the
        orphaned chunks are recomputed inline, the wedged pool is abandoned,
        and the next generation dispatches on a fresh pool."""
        from repro.obs import get_tracer

        spec, rows, reference = rig_and_rows
        get_tracer().clear()
        parallel_module._FAULT_KILL_CHUNK_START = 14
        pool = ParallelEvaluationPool(
            spec, num_workers=3, chunk_rows=7,
            use_shared_memory=use_shm, task_timeout_s=2.0,
        )
        try:
            assert np.array_equal(pool.evaluate(rows), reference)
            parallel_module._FAULT_KILL_CHUNK_START = None
            assert np.array_equal(pool.evaluate(rows), reference)
        finally:
            pool.close()
        # Silent recovery is banned: the rebuild left structured warning
        # events (with chunk identity) in the tracer ring even though
        # tracing was never enabled.
        warnings_seen = get_tracer().records(kind="event", level="warning")
        names = {record["name"] for record in warnings_seen}
        assert "parallel.pool-abandoned" in names
        recovered = [r for r in warnings_seen if r["name"] == "parallel.chunks-recovered-inline"]
        assert recovered and all(r["attrs"]["chunks"] for r in recovered)

    def test_shared_memory_ring_rotates_and_grows(self):
        ring = SharedMemoryRing()
        first = ring.acquire(64)
        second = ring.acquire(64)
        assert first.name != second.name  # consecutive generations rotate slots
        third = ring.acquire(64)
        assert third.name == first.name  # full rotation reuses the slot
        grown = ring.acquire(first.size + 1)  # too small: recreated bigger
        assert grown.name != second.name and grown.size >= first.size + 1
        ring.close()
        ring.close()  # idempotent
