"""Tests for the mapping fitness evaluator."""

import numpy as np
import pytest

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError


class TestEvaluation:
    def test_fitness_matches_schedule_throughput(self, evaluator):
        encoding = evaluator.codec.random_encoding(rng=0)
        fitness = evaluator.evaluate(encoding, count_sample=False)
        schedule = evaluator.schedule_for(encoding)
        assert fitness == pytest.approx(schedule.throughput_gflops)

    def test_detailed_evaluation_consistent_with_evaluate(self, evaluator):
        encoding = evaluator.codec.random_encoding(rng=1)
        fitness = evaluator.evaluate(encoding, count_sample=False)
        detail = evaluator.detailed_evaluation(encoding)
        assert detail.fitness == pytest.approx(fitness)
        assert detail.objective_value == pytest.approx(fitness)
        assert detail.makespan_cycles > 0

    def test_deterministic_for_same_encoding(self, evaluator):
        encoding = evaluator.codec.random_encoding(rng=2)
        assert evaluator.evaluate(encoding, count_sample=False) == evaluator.evaluate(
            encoding, count_sample=False
        )

    def test_different_objectives_supported(self, small_platform, mix_group):
        latency_eval = MappingEvaluator(mix_group, small_platform, objective="latency")
        encoding = latency_eval.codec.random_encoding(rng=0)
        assert latency_eval.evaluate(encoding, count_sample=False) < 0  # negated makespan


class TestBudgetTracking:
    def test_samples_counted(self, evaluator):
        for i in range(5):
            evaluator.evaluate(evaluator.codec.random_encoding(rng=i))
        assert evaluator.samples_used == 5
        assert len(evaluator.history) == 5

    def test_uncounted_evaluations_do_not_consume_budget(self, evaluator):
        evaluator.evaluate(evaluator.codec.random_encoding(rng=0), count_sample=False)
        assert evaluator.samples_used == 0

    def test_budget_exhaustion_raises(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=3)
        for i in range(3):
            evaluator.evaluate(evaluator.codec.random_encoding(rng=i))
        assert evaluator.budget_exhausted
        with pytest.raises(OptimizationError):
            evaluator.evaluate(evaluator.codec.random_encoding(rng=99))

    def test_remaining_budget(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=10)
        evaluator.evaluate(evaluator.codec.random_encoding(rng=0))
        assert evaluator.remaining_budget == 9
        assert MappingEvaluator(mix_group, small_platform).remaining_budget is None

    def test_population_evaluation_stops_at_budget(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=4)
        population = evaluator.codec.random_population(10, rng=0)
        fitnesses = evaluator.evaluate_population(population)
        assert evaluator.samples_used == 4
        assert np.sum(np.isfinite(fitnesses)) == 4

    def test_history_is_monotone_best_so_far(self, evaluator):
        for i in range(20):
            evaluator.evaluate(evaluator.codec.random_encoding(rng=i))
        history = evaluator.history
        assert all(b >= a for a, b in zip(history, history[1:]))

    def test_best_encoding_achieves_best_fitness(self, evaluator):
        for i in range(15):
            evaluator.evaluate(evaluator.codec.random_encoding(rng=i))
        best = evaluator.best_encoding
        assert best is not None
        assert evaluator.evaluate(best, count_sample=False) == pytest.approx(evaluator.best_fitness)

    def test_reset_clears_state(self, evaluator):
        evaluator.evaluate(evaluator.codec.random_encoding(rng=0))
        evaluator.reset()
        assert evaluator.samples_used == 0
        assert evaluator.best_encoding is None
        assert evaluator.history == []


class TestSampleRecording:
    def test_recording_disabled_by_default(self, evaluator):
        evaluator.evaluate(evaluator.codec.random_encoding(rng=0))
        assert evaluator.sampled_encodings.shape[0] == 0

    def test_recording_captures_all_samples(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=50)
        evaluator.record_samples = True
        for i in range(7):
            evaluator.evaluate(evaluator.codec.random_encoding(rng=i))
        assert evaluator.sampled_encodings.shape == (7, evaluator.codec.encoding_length)
        assert evaluator.sampled_fitnesses.shape == (7,)
