"""Tests for the Job Analyzer and Job Analysis Table."""

import numpy as np
import pytest

from repro.core.analyzer import JobAnalyzer, JobAnalysisTable
from repro.exceptions import SchedulingError
from repro.workloads.layers import fully_connected


class TestJobAnalyzer:
    def test_table_shape_matches_group_and_platform(self, small_platform, mix_group):
        table = JobAnalyzer(small_platform).analyze(mix_group)
        assert table.num_jobs == mix_group.size
        assert table.num_sub_accelerators == small_platform.num_sub_accelerators

    def test_all_entries_positive(self, analysis_table):
        assert np.all(analysis_table.latency_cycles > 0)
        assert np.all(analysis_table.required_bw_gbps > 0)
        assert np.all(analysis_table.energy_joules > 0)
        assert np.all(analysis_table.dram_traffic_bytes > 0)

    def test_total_flops_matches_group(self, small_platform, mix_group):
        table = JobAnalyzer(small_platform).analyze(mix_group)
        assert table.total_flops == pytest.approx(mix_group.total_flops)

    def test_empty_group_rejected(self, small_platform):
        with pytest.raises(SchedulingError):
            JobAnalyzer(small_platform).analyze([])

    def test_profile_layer_caches_identical_layers(self, small_platform):
        analyzer = JobAnalyzer(small_platform)
        layer = fully_connected(4, 256, 256)
        first = analyzer.profile_layer(layer, 0)
        second = analyzer.profile_layer(layer, 0)
        assert first == second
        assert len(analyzer._cache) == 1

    def test_profile_layer_rejects_bad_core_index(self, small_platform):
        analyzer = JobAnalyzer(small_platform)
        with pytest.raises(SchedulingError):
            analyzer.profile_layer(fully_connected(1, 8, 8), 99)

    def test_lb_core_has_lower_bandwidth_profile(self, small_platform, mix_group):
        """On the tiny platform core 0 is HB and core 1 is LB."""
        table = JobAnalyzer(small_platform).analyze(mix_group)
        assert table.average_bandwidth_per_core()[1] < table.average_bandwidth_per_core()[0]
        assert table.average_latency_per_core()[1] > table.average_latency_per_core()[0]


class TestJobAnalysisTable:
    def test_profile_accessor(self, analysis_table):
        profile = analysis_table.profile(0, 1)
        assert profile.job_index == 0
        assert profile.sub_accelerator_index == 1
        assert profile.no_stall_latency_cycles == analysis_table.latency(0, 1)
        assert profile.required_bw_gbps == analysis_table.bandwidth(0, 1)

    def test_out_of_range_indices_rejected(self, analysis_table):
        with pytest.raises(SchedulingError):
            analysis_table.latency(analysis_table.num_jobs, 0)
        with pytest.raises(SchedulingError):
            analysis_table.bandwidth(0, analysis_table.num_sub_accelerators)

    def test_best_sub_accelerator_minimises_latency(self, analysis_table):
        for job in range(analysis_table.num_jobs):
            best = analysis_table.best_sub_accelerator(job)
            assert analysis_table.latency(job, best) == analysis_table.latency_cycles[job].min()

    def test_mismatched_array_shapes_rejected(self):
        with pytest.raises(SchedulingError):
            JobAnalysisTable(
                latency_cycles=np.ones((3, 2)),
                required_bw_gbps=np.ones((3, 3)),
                energy_joules=np.ones((3, 2)),
                dram_traffic_bytes=np.ones((3, 2)),
                job_flops=np.ones(3),
            )

    def test_mismatched_flops_shape_rejected(self):
        with pytest.raises(SchedulingError):
            JobAnalysisTable(
                latency_cycles=np.ones((3, 2)),
                required_bw_gbps=np.ones((3, 2)),
                energy_joules=np.ones((3, 2)),
                dram_traffic_bytes=np.ones((3, 2)),
                job_flops=np.ones(4),
            )
