"""Tests for the bandwidth allocator (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.analyzer import JobAnalysisTable
from repro.core.bw_allocator import BandwidthAllocator
from repro.core.encoding import Mapping
from repro.exceptions import SchedulingError


def _table(latency: np.ndarray, bandwidth: np.ndarray) -> JobAnalysisTable:
    """Build a small analysis table from explicit latency / bandwidth arrays."""
    latency = np.asarray(latency, dtype=float)
    bandwidth = np.asarray(bandwidth, dtype=float)
    return JobAnalysisTable(
        latency_cycles=latency,
        required_bw_gbps=bandwidth,
        energy_joules=np.ones_like(latency),
        dram_traffic_bytes=latency * bandwidth,
        job_flops=np.full(latency.shape[0], 1000.0),
    )


class TestValidation:
    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(SchedulingError):
            BandwidthAllocator(system_bandwidth_gbps=0)

    def test_rejects_mismatched_mapping(self):
        table = _table(np.ones((2, 2)), np.ones((2, 2)))
        mapping = Mapping(assignments=((0,), (1, 2)), num_jobs=3)
        with pytest.raises(SchedulingError):
            BandwidthAllocator(16).makespan_cycles(mapping, table)

    def test_rejects_more_cores_than_table(self):
        table = _table(np.ones((2, 1)), np.ones((2, 1)))
        mapping = Mapping(assignments=((0,), (1,)), num_jobs=2)
        with pytest.raises(SchedulingError):
            BandwidthAllocator(16).makespan_cycles(mapping, table)


class TestUncontendedExecution:
    def test_single_job_runs_at_no_stall_latency(self):
        table = _table([[100.0]], [[2.0]])
        mapping = Mapping(assignments=((0,),), num_jobs=1)
        makespan = BandwidthAllocator(16).makespan_cycles(mapping, table)
        assert makespan == pytest.approx(100.0)

    def test_sequential_jobs_add_up(self):
        table = _table([[100.0], [50.0]], [[2.0], [2.0]])
        mapping = Mapping(assignments=((0, 1),), num_jobs=2)
        makespan = BandwidthAllocator(16).makespan_cycles(mapping, table)
        assert makespan == pytest.approx(150.0)

    def test_parallel_jobs_limited_by_slowest_core(self):
        table = _table([[100.0, 100.0], [40.0, 40.0]], [[1.0, 1.0], [1.0, 1.0]])
        mapping = Mapping(assignments=((0,), (1,)), num_jobs=2)
        makespan = BandwidthAllocator(16).makespan_cycles(mapping, table)
        assert makespan == pytest.approx(100.0)

    def test_demand_below_system_bw_runs_at_full_speed(self):
        table = _table([[100.0, 100.0], [100.0, 100.0]], [[3.0, 3.0], [4.0, 4.0]])
        mapping = Mapping(assignments=((0,), (1,)), num_jobs=2)
        # Total demand 7 < 16 GB/s: both jobs finish at their no-stall latency.
        makespan = BandwidthAllocator(16).makespan_cycles(mapping, table)
        assert makespan == pytest.approx(100.0)


class TestContention:
    def test_two_identical_memory_bound_jobs_share_bandwidth(self):
        table = _table([[100.0, 100.0], [100.0, 100.0]], [[16.0, 16.0], [16.0, 16.0]])
        mapping = Mapping(assignments=((0,), (1,)), num_jobs=2)
        # Each job needs 16 GB/s but only 8 is available per job: 2x stretch.
        makespan = BandwidthAllocator(16).makespan_cycles(mapping, table)
        assert makespan == pytest.approx(200.0)

    def test_proportional_allocation_matches_hand_computation(self):
        # Job A: lat 100, bw 12; job B: lat 100, bw 4; system 8 GB/s.
        # Allocations: A gets 6, B gets 2 -> both stretch 2x and finish at 200.
        table = _table([[100.0, 100.0], [100.0, 100.0]], [[12.0, 12.0], [4.0, 4.0]])
        mapping = Mapping(assignments=((0,), (1,)), num_jobs=2)
        makespan = BandwidthAllocator(8).makespan_cycles(mapping, table)
        assert makespan == pytest.approx(200.0)

    def test_bandwidth_reallocated_after_completion(self):
        # Two memory-bound jobs on core 0 run after each other while core 1 is
        # busy with one long compute-bound job; after the first job of core 0
        # finishes, its bandwidth share is re-allocated.
        latency = [[100.0, 100.0], [100.0, 100.0], [300.0, 300.0]]
        bandwidth = [[16.0, 16.0], [16.0, 16.0], [0.5, 0.5]]
        table = _table(latency, bandwidth)
        mapping = Mapping(assignments=((0, 1), (2,)), num_jobs=3)
        schedule = BandwidthAllocator(16).allocate(mapping, table)
        schedule.validate()
        core0_jobs = schedule.jobs_on_core(0)
        assert len(core0_jobs) == 2
        # Both memory-bound jobs are slightly stretched because the long job
        # takes a small share, but total time stays close to 2 x 100 cycles.
        assert schedule.makespan_cycles == pytest.approx(300.0, rel=0.05)

    def test_makespan_never_below_traffic_bound(self):
        rng = np.random.default_rng(0)
        latency = rng.uniform(10, 1000, size=(6, 2))
        bandwidth = rng.uniform(0.5, 30, size=(6, 2))
        table = _table(latency, bandwidth)
        mapping = Mapping(assignments=((0, 2, 4), (1, 3, 5)), num_jobs=6)
        system_bw = 4.0
        makespan = BandwidthAllocator(system_bw).makespan_cycles(mapping, table)
        total_traffic_time = sum(
            latency[j, core] * bandwidth[j, core] / system_bw
            for core, jobs in enumerate(mapping.assignments)
            for j in jobs
        )
        assert makespan >= total_traffic_time - 1e-6


class TestScheduleRecording:
    def test_fast_and_recorded_paths_agree(self, small_platform, mix_group, analysis_table):
        from repro.core.encoding import MappingCodec

        codec = MappingCodec(mix_group.size, small_platform.num_sub_accelerators)
        allocator = BandwidthAllocator(small_platform.system_bandwidth_gbps)
        for seed in range(5):
            mapping = codec.decode(codec.random_encoding(rng=seed))
            fast = allocator.makespan_cycles(mapping, analysis_table)
            schedule = allocator.allocate(mapping, analysis_table)
            assert fast == pytest.approx(schedule.makespan_cycles)

    def test_every_job_scheduled_exactly_once(self, small_platform, mix_group, analysis_table):
        from repro.core.encoding import MappingCodec

        codec = MappingCodec(mix_group.size, small_platform.num_sub_accelerators)
        allocator = BandwidthAllocator(small_platform.system_bandwidth_gbps)
        mapping = codec.decode(codec.random_encoding(rng=7))
        schedule = allocator.allocate(mapping, analysis_table)
        assert sorted(job.job_index for job in schedule.jobs) == list(range(mix_group.size))

    def test_segments_tile_the_makespan(self, small_platform, mix_group, analysis_table):
        from repro.core.encoding import MappingCodec

        codec = MappingCodec(mix_group.size, small_platform.num_sub_accelerators)
        allocator = BandwidthAllocator(small_platform.system_bandwidth_gbps)
        mapping = codec.decode(codec.random_encoding(rng=9))
        schedule = allocator.allocate(mapping, analysis_table)
        starts = [seg.start_cycle for seg in schedule.segments]
        ends = [seg.end_cycle for seg in schedule.segments]
        assert starts[0] == pytest.approx(0.0)
        assert ends[-1] == pytest.approx(schedule.makespan_cycles)
        for previous_end, next_start in zip(ends[:-1], starts[1:]):
            assert next_start == pytest.approx(previous_end)

    def test_allocation_never_exceeds_system_bandwidth(self, small_platform, mix_group, analysis_table):
        from repro.core.encoding import MappingCodec

        codec = MappingCodec(mix_group.size, small_platform.num_sub_accelerators)
        allocator = BandwidthAllocator(small_platform.system_bandwidth_gbps)
        mapping = codec.decode(codec.random_encoding(rng=13))
        schedule = allocator.allocate(mapping, analysis_table)
        for segment in schedule.segments:
            assert segment.total_allocated_gbps <= small_platform.system_bandwidth_gbps + 1e-6
