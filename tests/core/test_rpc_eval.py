"""Tests for the multi-host RPC evaluation backend.

The ``rpc`` backend must be a drop-in replacement for ``batch``/``parallel``
(and therefore for the ``scalar`` oracle): bit-identical fitnesses, history,
best-encoding, and budget accounting — the worker fleet is purely a
throughput device.  Workers here are spawned *in process* on localhost
(ephemeral ports), which exercises the real socket protocol without needing
real parallelism; the perf claim lives in
``benchmarks/test_rpc_eval_speed.py``.

Fault tolerance is tested deterministically: a worker that aborts its
connection on the first ``eval`` request is observationally identical to a
worker process killed mid-shard (the coordinator sees the connection die),
without the timing races of an actual ``kill``.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.evaluator import EVAL_BACKENDS, MappingEvaluator
from repro.core.framework import M3E
from repro.core.parallel import EvaluatorSpec
from repro.core.rpc import (
    EvalWorkerServer,
    RpcEvaluationPool,
    RpcWorkerClient,
    parse_hosts,
    recv_frame,
    send_frame,
)
from repro.exceptions import ConfigurationError, RpcError, WorkerDiedError
from repro.workloads import TaskType, build_task_workload

TOKEN = "test-secret"


def _problem(setting: str, bandwidth: float, group_size: int, seed: int = 0):
    platform = build_setting(setting, bandwidth)
    group = build_task_workload(
        TaskType.MIX,
        group_size=group_size,
        seed=seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    return platform, group


def _spec_for(evaluator: MappingEvaluator) -> EvaluatorSpec:
    return EvaluatorSpec.capture(
        evaluator.codec, evaluator.batch_allocator, evaluator.table, evaluator.objective
    )


@pytest.fixture()
def workers():
    """Two live in-process evaluation workers on localhost ephemeral ports."""
    servers = [EvalWorkerServer(token=TOKEN).start() for _ in range(2)]
    yield servers
    for server in servers:
        server.shutdown()


def _rpc_evaluator(group, platform, servers, **kwargs) -> MappingEvaluator:
    return MappingEvaluator(
        group,
        platform,
        backend="rpc",
        eval_hosts=[server.address for server in servers],
        rpc_token=TOKEN,
        **kwargs,
    )


class AbortingWorker(EvalWorkerServer):
    """A worker that dies (aborts its connection) on the Nth eval request.

    From the coordinator's point of view this is exactly a worker process
    killed mid-shard: the connection drops without a reply, after the
    bootstrap handshake succeeded.
    """

    def __init__(self, die_on_eval: int = 1, **kwargs):
        super().__init__(**kwargs)
        self.die_on_eval = die_on_eval
        self._eval_requests = 0

    def _eval(self, rig, rows):
        with self._lock:
            self._eval_requests += 1
            count = self._eval_requests
        if count >= self.die_on_eval:
            raise WorkerDiedError("injected mid-population worker death")
        return super()._eval(rig, rows)


class TestProtocol:
    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            payload = b"x" * 100_000
            send_frame(left, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_closed_peer_raises_worker_died(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(WorkerDiedError):
                recv_frame(right)
        finally:
            right.close()

    def test_parse_hosts_forms(self):
        assert parse_hosts(None) == []
        assert parse_hosts("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_hosts(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
        assert parse_hosts("127.0.0.1:9123,") == [("127.0.0.1", 9123)]

    @pytest.mark.parametrize("bad", ["nocolon", ":9", "h:", "h:notaport", "h:0", "h:70000"])
    def test_parse_hosts_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            parse_hosts(bad)

    def test_wrong_token_rejected_without_killing_worker(self, workers):
        server = workers[0]
        bad = RpcWorkerClient(server.host, server.port, token="wrong")
        with pytest.raises(RpcError, match="rejected the authentication token"):
            bad.connect()
        # The worker survives a failed auth and still serves good clients.
        good = RpcWorkerClient(server.host, server.port, token=TOKEN)
        good.connect()
        assert good.heartbeat()
        good.close()

    def test_heartbeat_false_after_worker_shutdown(self):
        server = EvalWorkerServer(token=TOKEN).start()
        client = RpcWorkerClient(server.host, server.port, token=TOKEN)
        client.connect()
        assert client.heartbeat()
        server.shutdown()
        # The worker's side of the conversation is gone; the next heartbeat
        # must come back False (reset, EOF, or timeout — never an exception).
        assert not client.heartbeat(timeout=2.0)
        client.close()

    def test_empty_token_refused_on_non_loopback_listen(self):
        """Post-auth frames are pickle; an open 0.0.0.0 listener with no
        token would be unauthenticated remote code execution."""
        with pytest.raises(ConfigurationError, match="non-loopback"):
            EvalWorkerServer(host="0.0.0.0", token="")
        # Loopback with an empty token stays fine (local development).
        server = EvalWorkerServer(host="127.0.0.1", token="")
        server.shutdown()

    def test_oversized_auth_frame_dropped_without_buffering(self, workers):
        """An unauthenticated peer cannot make the worker buffer a huge
        'token': the connection dies at the length prefix."""
        server = workers[0]
        conn = socket.create_connection((server.host, server.port), timeout=5.0)
        try:
            send_frame(conn, b"x" * 100_000)  # far above MAX_AUTH_FRAME_BYTES
            conn.settimeout(5.0)
            # Closed without an auth reply: clean EOF or a reset (the worker
            # drops the connection with our unread bytes still in flight).
            try:
                assert conn.recv(1) == b""
            except ConnectionResetError:
                pass
        finally:
            conn.close()
        # The worker survives and still serves authenticated clients.
        good = RpcWorkerClient(server.host, server.port, token=TOKEN)
        good.connect()
        assert good.heartbeat()
        good.close()

    def test_eval_before_bootstrap_is_a_protocol_error(self, workers):
        client = RpcWorkerClient(workers[0].host, workers[0].port, token=TOKEN)
        client.connect()
        try:
            with pytest.raises(RpcError, match="eval before bootstrap"):
                client.evaluate(np.zeros((4, 4)))
        finally:
            client.close()


class TestRpcBackendEquivalence:
    @pytest.mark.parametrize("setting,bandwidth,group_size,objective", [
        ("S1", 16.0, 10, "throughput"),
        ("S2", 2.0, 12, "latency"),
        ("S3", 64.0, 16, "throughput"),
        ("S2", 16.0, 12, "energy"),  # needs_mapping objective inside workers
    ])
    def test_population_evaluation_bitwise_identical_to_scalar_oracle(
        self, workers, setting, bandwidth, group_size, objective
    ):
        """Property: the rpc backend matches the scalar oracle bit for bit —
        fitnesses, history, budget, and best encoding."""
        platform, group = _problem(setting, bandwidth, group_size)
        scalar = MappingEvaluator(group, platform, objective=objective,
                                  sampling_budget=400, backend="scalar")
        rpc = _rpc_evaluator(group, platform, workers,
                             objective=objective, sampling_budget=400)
        rng = np.random.default_rng(11)
        try:
            for _ in range(3):
                population = scalar.codec.random_population(30, rng)
                assert np.array_equal(
                    scalar.evaluate_population(population),
                    rpc.evaluate_population(population),
                )
            assert scalar.history == rpc.history
            assert scalar.samples_used == rpc.samples_used
            assert np.array_equal(scalar.best_encoding, rpc.best_encoding)
            assert scalar.best_fitness == rpc.best_fitness
        finally:
            rpc.close()

    def test_out_of_domain_population_identical_to_batch(self, workers):
        """Repair happens in the coordinator, so raw real vectors from
        continuous optimizers score identically on every backend."""
        platform, group = _problem("S2", 16.0, 10)
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = _rpc_evaluator(group, platform, workers)
        rng = np.random.default_rng(5)
        population = rng.normal(scale=4.0, size=(40, batch.codec.encoding_length))
        try:
            assert np.array_equal(
                batch.evaluate_population(population, count_samples=False),
                rpc.evaluate_population(population, count_samples=False),
            )
        finally:
            rpc.close()

    def test_budget_truncation_identical_to_batch(self, workers):
        platform, group = _problem("S2", 16.0, 10)
        batch = MappingEvaluator(group, platform, sampling_budget=7, backend="batch")
        rpc = _rpc_evaluator(group, platform, workers, sampling_budget=7)
        population = batch.codec.random_population(10, rng=0)
        try:
            assert np.array_equal(
                batch.evaluate_population(population),
                rpc.evaluate_population(population),
            )
            assert rpc.samples_used == 7
            assert batch.history == rpc.history
        finally:
            rpc.close()

    def test_cache_merges_into_coordinator(self, workers):
        """Worker results must land in the coordinator's memo cache: a repeat
        generation is served without touching the fleet again."""
        platform, group = _problem("S2", 16.0, 10)
        evaluator = _rpc_evaluator(group, platform, workers)
        population = evaluator.codec.random_population(24, rng=4)
        first = evaluator.evaluate_population(population, count_samples=False)
        assert evaluator._pool.is_running  # 24 rows -> two shards, real dispatch
        assert len(evaluator._fitness_cache) == 24
        evals_before = sum(server.evals_served for server in workers)
        assert evals_before == 2  # one shard per worker
        second = evaluator.evaluate_population(population, count_samples=False)
        assert np.array_equal(first, second)
        assert sum(server.evals_served for server in workers) == evals_before
        evaluator.close()
        assert not evaluator._pool.is_running

    def test_tiny_populations_run_inline_without_dialing_workers(self, workers):
        platform, group = _problem("S1", 16.0, 8)
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = _rpc_evaluator(group, platform, workers)
        population = batch.codec.random_population(6, rng=2)
        assert np.array_equal(
            batch.evaluate_population(population, count_samples=False),
            rpc.evaluate_population(population, count_samples=False),
        )
        # 6 rows is below MIN_ROWS_PER_WORKER: evaluated locally, fleet
        # never dialed (a round trip would cost more than the simulation).
        assert not rpc._pool.is_running
        assert all(server.connections_served == 0 for server in workers)
        rpc.close()

    def test_single_host_fleet_is_actually_used(self):
        """A fleet of one host was configured to take work off the
        coordinator: real populations must be dispatched to it, not
        silently evaluated inline."""
        platform, group = _problem("S2", 16.0, 10)
        server = EvalWorkerServer(token=TOKEN).start()
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = MappingEvaluator(
            group, platform, backend="rpc",
            eval_hosts=[server.address], rpc_token=TOKEN,
        )
        population = batch.codec.random_population(40, rng=12)
        try:
            assert np.array_equal(
                batch.evaluate_population(population, count_samples=False),
                rpc.evaluate_population(population, count_samples=False),
            )
            # Work-stealing dispatch: 40 rows at the default 16-row chunk
            # height is three chunks (16 + 16 + 8), all pulled by the one host.
            assert server.evals_served == 3 and server.rows_served == 40
        finally:
            rpc.close()
            server.shutdown()

    def test_search_results_identical_to_batch(self, workers):
        """End to end: a full MAGMA search is backend-invariant."""
        platform, group = _problem("S2", 16.0, 12)
        results = {}
        for backend in ("batch", "rpc"):
            explorer = M3E(
                platform,
                sampling_budget=150,
                eval_backend=backend,
                eval_hosts=[s.address for s in workers] if backend == "rpc" else None,
                rpc_token=TOKEN if backend == "rpc" else None,
            )
            results[backend] = explorer.search(
                group, optimizer="magma", seed=13,
                optimizer_options={"population_size": 10},
            )
        assert results["batch"].best_fitness == results["rpc"].best_fitness
        assert np.array_equal(
            results["batch"].best_encoding, results["rpc"].best_encoding
        )
        assert results["batch"].history == results["rpc"].history

    def test_no_hosts_is_bit_identical_local_fallback(self):
        """The degenerate no-fleet pool evaluates locally, bit-identically —
        this is also why the generic all-backends loops in the batch-eval
        tests can construct an rpc evaluator without any workers."""
        platform, group = _problem("S2", 16.0, 10)
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = MappingEvaluator(group, platform, backend="rpc")
        population = batch.codec.random_population(30, rng=9)
        assert np.array_equal(
            batch.evaluate_population(population, count_samples=False),
            rpc.evaluate_population(population, count_samples=False),
        )
        rpc.close()


class TestFaultTolerance:
    def test_worker_killed_mid_population_is_redispatched(self):
        """One of two workers dies on its first shard: the survivor picks up
        the orphaned shard and the result is still bit-identical."""
        platform, group = _problem("S2", 16.0, 10)
        dying = AbortingWorker(die_on_eval=1, token=TOKEN).start()
        healthy = EvalWorkerServer(token=TOKEN).start()
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = MappingEvaluator(
            group, platform, backend="rpc",
            eval_hosts=[dying.address, healthy.address], rpc_token=TOKEN,
        )
        population = batch.codec.random_population(40, rng=6)
        try:
            reference = batch.evaluate_population(population, count_samples=False)
            observed = rpc.evaluate_population(population, count_samples=False)
            assert np.array_equal(observed, reference)
            # Silent recovery is banned: the strike-off left structured
            # warning events with host and chunk identity in the tracer
            # ring, even though tracing was never enabled.
            from repro.obs import get_tracer

            dead_events = get_tracer().records(kind="event", name="rpc.host-dead")
            assert any(e["attrs"]["host"] == dying.address for e in dead_events)
            requeued = get_tracer().records(kind="event", name="rpc.chunk-requeued")
            assert requeued and all(len(e["attrs"]["chunk"]) == 2 for e in requeued)
            # The dying host is struck off and the survivor did real work:
            # the dying worker never completes a chunk, so every one of the
            # three chunks (40 rows / 16-row height) lands on the survivor —
            # including the one stolen back from the dead host's queue slot.
            assert rpc._pool.num_live_hosts == 1
            assert healthy.evals_served == 3
            # Later generations proceed on the survivor alone, still correct.
            again = rpc.evaluate_population(
                batch.codec.random_population(40, rng=7), count_samples=False
            )
            batch._fitness_cache.clear()
            assert np.array_equal(
                again,
                batch.evaluate_population(
                    batch.codec.random_population(40, rng=7), count_samples=False
                ),
            )
        finally:
            rpc.close()
            dying.shutdown()
            healthy.shutdown()

    def test_all_workers_dead_falls_back_to_local_evaluation(self):
        platform, group = _problem("S2", 16.0, 10)
        dying = [AbortingWorker(die_on_eval=1, token=TOKEN).start() for _ in range(2)]
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = MappingEvaluator(
            group, platform, backend="rpc",
            eval_hosts=[server.address for server in dying], rpc_token=TOKEN,
        )
        population = batch.codec.random_population(40, rng=8)
        try:
            assert np.array_equal(
                rpc.evaluate_population(population, count_samples=False),
                batch.evaluate_population(population, count_samples=False),
            )
            assert rpc._pool.num_live_hosts == 0
            # The stranded chunks' landing on the coordinator is an event,
            # not a silence.
            from repro.obs import get_tracer

            fallback = get_tracer().records(kind="event", name="rpc.local-fallback")
            assert fallback and fallback[-1]["attrs"]["chunks"]
        finally:
            rpc.close()
            for server in dying:
                server.shutdown()

    def test_unreachable_host_skipped_at_connect(self, workers):
        """A host that never answers is marked dead at dial time; the live
        workers (or the local rig) still produce the exact result."""
        platform, group = _problem("S2", 16.0, 10)
        # Grab a port with no listener behind it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_address = "%s:%d" % probe.getsockname()[:2]
        probe.close()
        batch = MappingEvaluator(group, platform, backend="batch")
        rpc = MappingEvaluator(
            group, platform, backend="rpc",
            eval_hosts=[dead_address, workers[0].address], rpc_token=TOKEN,
        )
        population = batch.codec.random_population(40, rng=10)
        try:
            assert np.array_equal(
                rpc.evaluate_population(population, count_samples=False),
                batch.evaluate_population(population, count_samples=False),
            )
            assert rpc._pool.num_live_hosts == 1
        finally:
            rpc.close()


class TestPool:
    def test_warm_up_connects_and_close_keeps_workers_alive(self, workers):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        pool = RpcEvaluationPool(
            _spec_for(evaluator),
            hosts=[server.address for server in workers],
            token=TOKEN,
        )
        assert pool.warm_up() == 2
        assert pool.is_running
        pool.close()
        assert not pool.is_running
        # close() drops connections only; the workers keep serving and the
        # pool can re-dial them.
        assert pool.warm_up() == 2
        pool.close()

    def test_empty_population_needs_no_workers(self, workers):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        pool = RpcEvaluationPool(
            _spec_for(evaluator),
            hosts=[server.address for server in workers],
            token=TOKEN,
        )
        out = pool.evaluate(np.empty((0, evaluator.codec.encoding_length)))
        assert out.shape == (0,)
        assert not pool.is_running
        pool.close()


class TestConfiguration:
    def test_rpc_listed_as_backend(self):
        assert "rpc" in EVAL_BACKENDS

    def test_rejects_hosts_on_other_backends(self):
        platform, group = _problem("S1", 16.0, 8)
        with pytest.raises(ConfigurationError):
            MappingEvaluator(group, platform, backend="batch", eval_hosts="a:1")
        with pytest.raises(ConfigurationError):
            M3E(platform, eval_backend="parallel", eval_hosts="a:1")
        with pytest.raises(ConfigurationError):
            M3E(platform, eval_backend="batch", rpc_token="t")

    def test_rejects_num_workers_on_rpc(self):
        platform, group = _problem("S1", 16.0, 8)
        with pytest.raises(ConfigurationError):
            MappingEvaluator(group, platform, backend="rpc", num_workers=2)

    def test_malformed_hosts_fail_at_construction(self):
        platform, _ = _problem("S1", 16.0, 8)
        with pytest.raises(ConfigurationError):
            M3E(platform, eval_backend="rpc", eval_hosts="not-an-address")

    def test_campaign_and_service_reject_hosts_on_other_backends(self, tmp_path):
        """The campaign/serve paths must fail as loudly as search/compare —
        never silently run a 'fleet-configured' campaign locally."""
        from repro.experiments.campaign import CampaignRunner
        from repro.service import MappingService

        with pytest.raises(ConfigurationError):
            CampaignRunner(eval_backend="batch", eval_hosts="a:1")
        with pytest.raises(ConfigurationError):
            MappingService(
                store=str(tmp_path / "s.jsonl"), scale="tiny",
                eval_backend="parallel", eval_hosts="a:1",
            )


class TestServiceFanOut:
    def test_service_jobs_fan_out_to_remote_hosts_bit_identically(self, tmp_path, workers):
        """A MappingService on the rpc backend produces the same stored
        solution as the threaded default — service jobs genuinely ride the
        remote fleet."""
        from repro.service import MappingService

        request = {"task": "vision", "seed": 5}
        summaries = {}
        for backend in ("batch", "rpc"):
            service = MappingService(
                store=str(tmp_path / f"solutions-{backend}.jsonl"),
                scale="tiny",
                eval_backend=backend,
                eval_hosts=[s.address for s in workers] if backend == "rpc" else None,
                rpc_token=TOKEN if backend == "rpc" else None,
                workers=1,
            )
            job = service.submit(request)
            assert service.wait(job.job_id, timeout=120)
            summaries[backend] = service.result(job.job_id)
            service.close()
        assert summaries["rpc"].to_dict() == summaries["batch"].to_dict()


class TestCli:
    def test_eval_worker_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["eval-worker", "--listen", "127.0.0.1:0"])
        assert args.listen == "127.0.0.1:0"
        assert args.func.__name__ == "_cmd_eval_worker"

    def test_rpc_backend_requires_hosts_on_cli(self):
        from repro.cli import main

        with pytest.raises(ConfigurationError, match="--eval-hosts"):
            main(["search", "--eval-backend", "rpc", "--budget", "10"])

    def test_search_command_over_rpc_matches_batch(self, workers, capsys):
        from repro.cli import main

        common = [
            "search", "--setting", "S1", "--task", "vision",
            "--group-size", "12", "--budget", "60", "--optimizer", "stdga",
        ]
        assert main(common) == 0
        batch_out = capsys.readouterr().out
        assert main(common + [
            "--eval-backend", "rpc",
            "--eval-hosts", ",".join(server.address for server in workers),
            "--eval-rpc-token", TOKEN,
        ]) == 0
        rpc_out = capsys.readouterr().out
        assert rpc_out == batch_out


class TestWorkerLifecycle:
    def test_shutdown_request_stops_the_server(self):
        server = EvalWorkerServer(token=TOKEN).start()
        client = RpcWorkerClient(server.host, server.port, token=TOKEN)
        client.connect()
        client.request_shutdown()
        client.close()
        # The ok reply races the handler finishing the shutdown; within a
        # moment new connections must be refused (listener closed).
        import time

        deadline = time.monotonic() + 5.0
        while True:
            try:
                socket.create_connection((server.host, server.port), timeout=1.0).close()
            except OSError:
                break
            assert time.monotonic() < deadline, "listener still accepting after shutdown"
            time.sleep(0.05)

    def test_one_worker_serves_sequential_coordinators(self):
        """Workers are long-lived: two searches (two pools) reuse one worker."""
        platform, group = _problem("S1", 16.0, 8)
        server = EvalWorkerServer(token=TOKEN).start()
        evaluator = MappingEvaluator(group, platform, backend="batch")
        rows = evaluator.codec.repair_batch(evaluator.codec.random_population(20, rng=1))
        reference = evaluator._rig.fitnesses_for_rows(rows)
        try:
            for round_number in (1, 2):
                with RpcEvaluationPool(
                    _spec_for(evaluator), hosts=[server.address], token=TOKEN
                ) as pool:
                    assert np.array_equal(pool.evaluate(rows), reference)
                # 20 rows with one host = two work-stealing chunks (16 + 4).
                assert server.evals_served == 2 * round_number
            assert server.connections_served == 2
        finally:
            server.shutdown()

    def test_concurrent_coordinators_share_one_worker(self):
        """The service drives several searches at once; each connection gets
        its own rig and they must not interfere."""
        platform, group = _problem("S2", 16.0, 10)
        server = EvalWorkerServer(token=TOKEN).start()
        evaluator = MappingEvaluator(group, platform, backend="batch")
        rows = evaluator.codec.repair_batch(evaluator.codec.random_population(24, rng=2))
        reference = evaluator._rig.fitnesses_for_rows(rows)
        errors = []

        def drive():
            try:
                client = RpcWorkerClient(server.host, server.port, token=TOKEN)
                client.connect()
                client.bootstrap(_spec_for(evaluator))
                for _ in range(3):
                    if not np.array_equal(client.evaluate(rows), reference):
                        errors.append("mismatch")
                client.close()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(repr(error))

        threads = [threading.Thread(target=drive) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        server.shutdown()
        assert not errors


class SlowWorker(EvalWorkerServer):
    """A healthy but slow worker: every reply is correct, just late.

    Under work-stealing dispatch a slow host simply pulls fewer chunks from
    the shared queue; it must never change the gathered fitnesses.
    """

    def __init__(self, delay_s: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        self.delay_s = delay_s

    def _eval(self, rig, rows):
        time.sleep(self.delay_s)
        return super()._eval(rig, rows)


class TestWorkStealingProperties:
    """Chunked work-stealing over the fleet must be invisible in the results.

    Mirror of the parallel-backend property suite
    (``tests/core/test_parallel_eval.py::TestWorkStealingProperties``): for
    every chunk size and fault schedule (slow host, host killed mid-chunk)
    the gathered fitnesses are bit-identical to the in-process batch sweep —
    chunking and steal order are pure throughput devices.
    """

    @pytest.fixture()
    def spec_rows_reference(self):
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform, backend="batch")
        spec = _spec_for(evaluator)
        rows = evaluator.codec.repair_batch(
            evaluator.codec.random_population(73, rng=5)
        )
        return spec, rows, spec.build_rig().fitnesses_for_rows(rows)

    @pytest.mark.parametrize("chunk_rows", [1, 3, 7, 16, 50])
    def test_arbitrary_chunk_sizes_bit_identical(
        self, workers, spec_rows_reference, chunk_rows
    ):
        spec, rows, reference = spec_rows_reference
        pool = RpcEvaluationPool(
            spec,
            hosts=[server.address for server in workers],
            token=TOKEN,
            chunk_rows=chunk_rows,
        )
        try:
            assert np.array_equal(pool.evaluate(rows), reference)
        finally:
            pool.close()

    def test_slow_worker_steals_less_but_stays_bit_identical(
        self, spec_rows_reference
    ):
        spec, rows, reference = spec_rows_reference
        slow = SlowWorker(delay_s=0.1, token=TOKEN).start()
        fast = EvalWorkerServer(token=TOKEN).start()
        pool = RpcEvaluationPool(
            spec, hosts=[slow.address, fast.address], token=TOKEN, chunk_rows=4
        )
        try:
            assert np.array_equal(pool.evaluate(rows), reference)
            # 73 rows at height 4 is 19 chunks.  The slow host sleeps 100ms
            # per chunk while the fast host clears the whole queue in well
            # under that, so stealing must have skewed the split — yet both
            # hosts did real work (each popped at least its first chunk).
            assert slow.evals_served >= 1
            assert fast.evals_served > slow.evals_served
        finally:
            pool.close()
            slow.shutdown()
            fast.shutdown()

    def test_killed_worker_with_tiny_chunks_bit_identical(
        self, spec_rows_reference
    ):
        """A host that serves two chunks and then dies mid-queue: its third
        chunk is requeued for the survivor and later generations keep
        working, all bit-identical."""
        spec, rows, reference = spec_rows_reference
        dying = AbortingWorker(die_on_eval=3, token=TOKEN).start()
        healthy = EvalWorkerServer(token=TOKEN).start()
        pool = RpcEvaluationPool(
            spec, hosts=[dying.address, healthy.address], token=TOKEN, chunk_rows=5
        )
        try:
            assert np.array_equal(pool.evaluate(rows), reference)
            assert pool.num_live_hosts == 1
            # Next generation proceeds on the survivor alone, still exact.
            assert np.array_equal(pool.evaluate(rows), reference)
        finally:
            pool.close()
            dying.shutdown()
            healthy.shutdown()
