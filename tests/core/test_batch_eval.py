"""Tests for the batched evaluation engine and its bitwise scalar equivalence.

The batch backend must be a drop-in replacement for the scalar reference
oracle: same fitnesses (bit for bit), same convergence history, same
best-encoding, same budget accounting — only faster.
"""

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.bw_allocator import BandwidthAllocator, BatchBandwidthAllocator
from repro.core.evaluator import EVAL_BACKENDS, MappingEvaluator
from repro.core.encoding import MappingCodec
from repro.exceptions import ConfigurationError
from repro.workloads import TaskType, build_task_workload


def _problem(setting: str, bandwidth: float, group_size: int, seed: int = 0):
    platform = build_setting(setting, bandwidth)
    group = build_task_workload(
        TaskType.MIX,
        group_size=group_size,
        seed=seed,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    return platform, group


class TestBatchDecode:
    def test_repair_batch_matches_scalar_repair(self):
        codec = MappingCodec(num_jobs=9, num_sub_accelerators=4)
        rng = np.random.default_rng(0)
        population = rng.normal(scale=3.0, size=(25, codec.encoding_length))
        repaired = codec.repair_batch(population)
        for i in range(len(population)):
            assert np.array_equal(repaired[i], codec.repair(population[i]))

    def test_decode_batch_matches_scalar_decode(self):
        codec = MappingCodec(num_jobs=11, num_sub_accelerators=3)
        population = codec.random_population(30, rng=1)
        batch = codec.decode_batch(population)
        for i in range(len(population)):
            assert batch.mapping(i) == codec.decode(population[i])

    def test_decode_batch_ties_break_on_job_index(self):
        codec = MappingCodec(num_jobs=4, num_sub_accelerators=2)
        encoding = np.array([0, 1, 0, 1, 0.5, 0.5, 0.5, 0.5])
        batch = codec.decode_batch(encoding[None, :])
        assert batch.mapping(0) == codec.decode(encoding)
        assert batch.mapping(0).assignments == ((0, 2), (1, 3))


class TestBatchAllocator:
    @pytest.mark.parametrize("setting,bandwidth,group_size", [
        ("S1", 16.0, 8),
        ("S2", 4.0, 12),
        ("S3", 64.0, 16),   # 8 cores: exercises the sequential demand sum
        ("S6", 256.0, 20),  # 16 cores
    ])
    def test_makespans_bitwise_equal_scalar(self, setting, bandwidth, group_size):
        platform, group = _problem(setting, bandwidth, group_size)
        evaluator = MappingEvaluator(group, platform)
        table = evaluator.table
        codec = evaluator.codec
        population = codec.random_population(32, rng=3)
        batch_makespans = BatchBandwidthAllocator(bandwidth).makespan_cycles(
            codec.decode_batch(population), table
        )
        scalar = BandwidthAllocator(bandwidth)
        for i in range(len(population)):
            expected = scalar.makespan_cycles(codec.decode(population[i]), table)
            assert batch_makespans[i] == expected  # bitwise, no tolerance

    def test_residual_work_clamped_at_zero(self):
        """Regression guard for the residual-work clamp: floating-point
        rounding in ``remaining_work -= dt * allocation`` must never leave a
        live core with negative residual work (which would surface as a
        negative ``runtimes.min()`` and a spurious SchedulingError on the next
        event).  Stress heavily-contended (low-bandwidth) schedules, where
        near-tie completion events make the drain arithmetic most delicate."""
        platform, group = _problem("S5", 1.0, 24)
        evaluator = MappingEvaluator(group, platform, backend="scalar")
        rng = np.random.default_rng(9)
        for _ in range(50):
            encoding = evaluator.codec.random_encoding(rng)
            makespan = evaluator.allocator.makespan_cycles(
                evaluator.codec.decode(encoding), evaluator.table
            )
            assert np.isfinite(makespan) and makespan > 0


class TestBackendEquivalence:
    @pytest.mark.parametrize("setting,bandwidth,group_size,objective", [
        ("S1", 16.0, 10, "throughput"),
        ("S2", 16.0, 12, "throughput"),
        ("S2", 2.0, 12, "latency"),
        ("S3", 64.0, 16, "throughput"),
        ("S2", 16.0, 12, "energy"),  # needs_mapping objective on the batch path
    ])
    def test_population_evaluation_bitwise_identical(self, setting, bandwidth, group_size, objective):
        """Property: fitnesses, history, and best encoding match bit for bit."""
        platform, group = _problem(setting, bandwidth, group_size)
        scalar = MappingEvaluator(group, platform, objective=objective,
                                  sampling_budget=400, backend="scalar")
        batch = MappingEvaluator(group, platform, objective=objective,
                                 sampling_budget=400, backend="batch")
        rng = np.random.default_rng(11)
        for _ in range(4):
            population = scalar.codec.random_population(30, rng)
            fitness_scalar = scalar.evaluate_population(population)
            fitness_batch = batch.evaluate_population(population)
            assert np.array_equal(fitness_scalar, fitness_batch)
        assert scalar.history == batch.history  # exact, not approx
        assert scalar.samples_used == batch.samples_used
        assert np.array_equal(scalar.best_encoding, batch.best_encoding)
        assert scalar.best_fitness == batch.best_fitness

    def test_equivalent_with_unrepaired_real_vectors(self):
        """Continuous optimizers feed raw real vectors; repair must agree."""
        platform, group = _problem("S2", 16.0, 10)
        scalar = MappingEvaluator(group, platform, backend="scalar")
        batch = MappingEvaluator(group, platform, backend="batch")
        rng = np.random.default_rng(5)
        population = rng.normal(scale=4.0, size=(40, scalar.codec.encoding_length))
        assert np.array_equal(
            scalar.evaluate_population(population, count_samples=False),
            batch.evaluate_population(population, count_samples=False),
        )

    def test_budget_truncation_matches_scalar(self):
        platform, group = _problem("S2", 16.0, 10)
        scalar = MappingEvaluator(group, platform, sampling_budget=7, backend="scalar")
        batch = MappingEvaluator(group, platform, sampling_budget=7, backend="batch")
        population = scalar.codec.random_population(10, rng=0)
        fitness_scalar = scalar.evaluate_population(population)
        fitness_batch = batch.evaluate_population(population)
        assert np.array_equal(fitness_scalar, fitness_batch)
        assert np.sum(np.isfinite(fitness_batch)) == 7
        assert scalar.samples_used == batch.samples_used == 7
        assert scalar.history == batch.history

    def test_duplicates_served_from_cache_still_charge_budget(self):
        """Memoization skips re-simulation but budget accounting is unchanged."""
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform, sampling_budget=100, backend="batch")
        encoding = evaluator.codec.random_encoding(rng=0)
        population = np.tile(encoding, (6, 1))
        fitnesses = evaluator.evaluate_population(population)
        assert evaluator.samples_used == 6  # every duplicate charged
        assert len(set(fitnesses.tolist())) == 1
        assert len(evaluator._fitness_cache) == 1  # simulated once

    def test_search_results_identical_across_backends(self):
        """End to end: a full MAGMA search is backend-invariant."""
        from repro.core.framework import M3E

        platform, group = _problem("S2", 16.0, 12)
        results = {}
        for backend in EVAL_BACKENDS:
            explorer = M3E(platform, sampling_budget=150, eval_backend=backend)
            results[backend] = explorer.search(
                group, optimizer="magma", seed=13,
                optimizer_options={"population_size": 10},
            )
        for backend in EVAL_BACKENDS:
            assert results["scalar"].best_fitness == results[backend].best_fitness
            assert np.array_equal(
                results["scalar"].best_encoding, results[backend].best_encoding
            )
            assert results["scalar"].history == results[backend].history

    def test_rejects_unknown_backend(self):
        platform, group = _problem("S1", 16.0, 8)
        with pytest.raises(ConfigurationError):
            MappingEvaluator(group, platform, backend="gpu")


class TestOutOfDomainParity:
    """Regression tests: every backend must simulate the *repaired* encoding.

    The scalar backend used to hand the raw encoding to its fitness path
    while the batch backend simulated the repaired one, so an out-of-domain
    vector (e.g. a continuous optimizer's un-rounded selection gene) could
    score differently per backend, and the recorded ``best_encoding`` was a
    repaired vector whose fitness was never the one measured.
    """

    def _evaluators(self, sampling_budget=None):
        platform, group = _problem("S2", 16.0, 10)
        return {
            backend: MappingEvaluator(
                group, platform, sampling_budget=sampling_budget, backend=backend
            )
            for backend in ("scalar", "batch")
        }

    def test_single_evaluate_identical_on_unrepaired_encoding(self):
        evaluators = self._evaluators(sampling_budget=10)
        encoding = evaluators["scalar"].codec.random_encoding(rng=0)
        encoding[0] = 2.7  # selection gene off the integer lattice
        encoding[-1] = 1.9  # priority gene outside [0, 1)
        fitnesses = {name: ev.evaluate(encoding) for name, ev in evaluators.items()}
        assert fitnesses["scalar"] == fitnesses["batch"]

    def test_property_unrepaired_populations_identical(self):
        """Property: arbitrary real vectors score identically on both backends."""
        evaluators = self._evaluators()
        rng = np.random.default_rng(23)
        for scale in (0.5, 3.0, 10.0):
            population = rng.normal(scale=scale, size=(25, evaluators["scalar"].codec.encoding_length))
            results = {
                name: ev.evaluate_population(population, count_samples=False)
                for name, ev in evaluators.items()
            }
            assert np.array_equal(results["scalar"], results["batch"])

    def test_best_encoding_fitness_is_the_measured_one(self):
        """The recorded best encoding must reproduce the recorded fitness."""
        for backend in ("scalar", "batch"):
            platform, group = _problem("S2", 16.0, 10)
            evaluator = MappingEvaluator(group, platform, sampling_budget=30, backend=backend)
            rng = np.random.default_rng(3)
            population = rng.normal(scale=4.0, size=(20, evaluator.codec.encoding_length))
            evaluator.evaluate_population(population)
            replay = evaluator.evaluate(evaluator.best_encoding, count_sample=False)
            assert replay == evaluator.best_fitness


class TestReportingRepairsEncodings:
    """``detailed_evaluation``/``schedule_for`` must repair before decoding,
    so a continuous optimizer's raw best vector yields the same final metrics
    as the repaired encoding whose fitness the search recorded."""

    def test_detailed_evaluation_matches_search_fitness(self):
        platform, group = _problem("S2", 16.0, 10)
        evaluator = MappingEvaluator(group, platform)
        raw = np.random.default_rng(8).normal(
            scale=4.0, size=evaluator.codec.encoding_length
        )
        fitness = evaluator.evaluate(raw, count_sample=False)
        detail = evaluator.detailed_evaluation(raw)
        assert detail.fitness == pytest.approx(fitness)
        repaired_detail = evaluator.detailed_evaluation(evaluator.codec.repair(raw))
        assert detail.fitness == repaired_detail.fitness
        assert detail.mapping == repaired_detail.mapping

    def test_schedule_for_matches_repaired_schedule(self):
        platform, group = _problem("S1", 16.0, 8)
        evaluator = MappingEvaluator(group, platform)
        raw = np.random.default_rng(9).normal(
            scale=4.0, size=evaluator.codec.encoding_length
        )
        raw_schedule = evaluator.schedule_for(raw)
        repaired_schedule = evaluator.schedule_for(evaluator.codec.repair(raw))
        assert raw_schedule.makespan_cycles == repaired_schedule.makespan_cycles
        assert raw_schedule.jobs == repaired_schedule.jobs


class TestRecordSamplesAcrossBackends:
    def test_sampled_encodings_and_fitnesses_identical(self):
        """``record_samples=True`` (the Fig. 10 exploration path) must record
        the same repaired encodings and fitnesses on every backend."""
        platform, group = _problem("S2", 16.0, 10)
        evaluators = {}
        for backend in EVAL_BACKENDS:
            evaluator = MappingEvaluator(group, platform, sampling_budget=100, backend=backend)
            evaluator.record_samples = True
            evaluators[backend] = evaluator
        rng = np.random.default_rng(17)
        populations = [
            rng.normal(scale=3.0, size=(20, evaluators["scalar"].codec.encoding_length))
            for _ in range(2)
        ]
        for evaluator in evaluators.values():
            for population in populations:
                evaluator.evaluate_population(population)
            evaluator.close()
        reference = evaluators["scalar"]
        for backend in ("batch", "parallel"):
            other = evaluators[backend]
            assert np.array_equal(reference.sampled_encodings, other.sampled_encodings)
            assert np.array_equal(reference.sampled_fitnesses, other.sampled_fitnesses)
        # Every recorded encoding is repaired (in the valid domain).
        encodings = reference.sampled_encodings
        genome = reference.codec.genome_length
        assert np.array_equal(np.rint(encodings[:, :genome]), encodings[:, :genome])
        assert np.all((encodings[:, genome:] >= 0.0) & (encodings[:, genome:] < 1.0))
