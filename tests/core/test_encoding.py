"""Tests for the mapping encoding scheme."""

import numpy as np
import pytest

from repro.core.encoding import Mapping, MappingCodec
from repro.exceptions import EncodingError


@pytest.fixture()
def codec() -> MappingCodec:
    return MappingCodec(num_jobs=6, num_sub_accelerators=3)


class TestCodecBasics:
    def test_lengths(self, codec):
        assert codec.genome_length == 6
        assert codec.encoding_length == 12

    def test_invalid_construction(self):
        with pytest.raises(EncodingError):
            MappingCodec(num_jobs=0, num_sub_accelerators=2)
        with pytest.raises(EncodingError):
            MappingCodec(num_jobs=4, num_sub_accelerators=0)

    def test_random_encoding_is_valid(self, codec):
        encoding = codec.random_encoding(rng=0)
        codec.validate(encoding)
        selection = codec.selection_genome(encoding)
        priority = codec.priority_genome(encoding)
        assert np.all((selection >= 0) & (selection < 3))
        assert np.all((priority >= 0) & (priority < 1))

    def test_random_population_shape(self, codec):
        population = codec.random_population(10, rng=1)
        assert population.shape == (10, 12)

    def test_validate_rejects_wrong_length(self, codec):
        with pytest.raises(EncodingError):
            codec.validate(np.zeros(5))

    def test_validate_rejects_nan(self, codec):
        bad = np.zeros(12)
        bad[3] = np.nan
        with pytest.raises(EncodingError):
            codec.validate(bad)


class TestRepair:
    def test_repair_clamps_selection_genes(self, codec):
        encoding = np.concatenate([np.full(6, 99.7), np.full(6, 0.5)])
        repaired = codec.repair(encoding)
        assert np.all(repaired[:6] == 2)

    def test_repair_clamps_negative_values(self, codec):
        encoding = np.concatenate([np.full(6, -3.2), np.full(6, -0.4)])
        repaired = codec.repair(encoding)
        assert np.all(repaired[:6] == 0)
        assert np.all(repaired[6:] == 0.0)

    def test_repair_rounds_fractional_selections(self, codec):
        encoding = np.concatenate([np.full(6, 1.4), np.full(6, 0.5)])
        repaired = codec.repair(encoding)
        assert np.all(repaired[:6] == 1)

    def test_repair_keeps_priorities_below_one(self, codec):
        encoding = np.concatenate([np.zeros(6), np.full(6, 2.0)])
        repaired = codec.repair(encoding)
        assert np.all(repaired[6:] < 1.0)


class TestDecode:
    def test_decode_covers_every_job_once(self, codec):
        mapping = codec.decode(codec.random_encoding(rng=3))
        all_jobs = sorted(j for core in mapping.assignments for j in core)
        assert all_jobs == list(range(6))

    def test_decode_orders_by_priority(self, codec):
        encoding = np.array([0, 0, 0, 1, 1, 1, 0.9, 0.1, 0.5, 0.3, 0.2, 0.8], dtype=float)
        mapping = codec.decode(encoding)
        assert mapping.assignments[0] == (1, 2, 0)
        assert mapping.assignments[1] == (4, 3, 5)

    def test_priority_ties_break_on_job_index(self, codec):
        encoding = np.concatenate([np.zeros(6), np.full(6, 0.5)])
        mapping = codec.decode(encoding)
        assert mapping.assignments[0] == (0, 1, 2, 3, 4, 5)

    def test_decode_of_example_from_paper_figure5(self):
        # Fig. 5(a): two sub-accelerators, five jobs, encoding
        # [1,2,2,1,2 | 0.1,0.8,0.4,0.7,0.3] decodes to
        # accel-1: J1 then J4; accel-2: J5, J3, J2 (0-indexed: 0,3 and 4,2,1).
        codec = MappingCodec(num_jobs=5, num_sub_accelerators=2)
        encoding = np.array([1, 2, 2, 1, 2, 0.1, 0.8, 0.4, 0.7, 0.3], dtype=float) - np.array(
            [1, 1, 1, 1, 1, 0, 0, 0, 0, 0]
        )
        mapping = codec.decode(encoding)
        assert mapping.assignments[0] == (0, 3)
        assert mapping.assignments[1] == (4, 2, 1)


class TestEncodeRoundTrip:
    def test_encode_decode_round_trip(self, codec):
        original = codec.decode(codec.random_encoding(rng=11))
        recovered = codec.decode(codec.encode(original))
        assert recovered.assignments == original.assignments

    def test_encode_rejects_mismatched_job_count(self, codec):
        other = MappingCodec(num_jobs=4, num_sub_accelerators=3)
        mapping = other.decode(other.random_encoding(rng=0))
        with pytest.raises(EncodingError):
            codec.encode(mapping)


class TestMapping:
    def test_rejects_duplicate_job(self):
        with pytest.raises(EncodingError):
            Mapping(assignments=((0, 1), (1,)), num_jobs=3)

    def test_rejects_missing_job(self):
        with pytest.raises(EncodingError):
            Mapping(assignments=((0,), (1,)), num_jobs=3)

    def test_rejects_out_of_range_job(self):
        with pytest.raises(EncodingError):
            Mapping(assignments=((0, 5), (1, 2)), num_jobs=4)

    def test_core_of_and_jobs_per_core(self):
        mapping = Mapping(assignments=((0, 2), (1,), ()), num_jobs=3)
        assert mapping.core_of(2) == 0
        assert mapping.core_of(1) == 1
        assert mapping.jobs_per_core() == [2, 1, 0]

    def test_describe_lists_cores(self):
        mapping = Mapping(assignments=((0,), (1,)), num_jobs=2)
        assert "core0" in mapping.describe() and "core1" in mapping.describe()
