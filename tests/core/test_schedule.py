"""Tests for the schedule data structure."""

import pytest

from repro.core.schedule import BandwidthSegment, Schedule, ScheduledJob
from repro.exceptions import SchedulingError


def _job(index: int, core: int, start: float, end: float, bw: float = 4.0) -> ScheduledJob:
    return ScheduledJob(
        job_index=index,
        sub_accelerator_index=core,
        start_cycle=start,
        end_cycle=end,
        no_stall_latency_cycles=end - start,
        required_bw_gbps=bw,
    )


class TestScheduledJob:
    def test_duration_and_slowdown(self):
        job = ScheduledJob(0, 0, start_cycle=10, end_cycle=30, no_stall_latency_cycles=10, required_bw_gbps=4)
        assert job.duration_cycles == 20
        assert job.slowdown == pytest.approx(2.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(SchedulingError):
            ScheduledJob(0, 0, start_cycle=10, end_cycle=5, no_stall_latency_cycles=1, required_bw_gbps=1)


class TestSchedule:
    def test_makespan_and_throughput(self):
        jobs = [_job(0, 0, 0, 100), _job(1, 1, 0, 250)]
        schedule = Schedule(jobs, [], num_sub_accelerators=2, total_flops=1e9, frequency_hz=200e6)
        assert schedule.makespan_cycles == 250
        assert schedule.makespan_seconds == pytest.approx(250 / 200e6)
        assert schedule.throughput_gflops == pytest.approx(1e9 / (250 / 200e6) / 1e9)

    def test_makespan_override_used_by_summary_schedules(self):
        schedule = Schedule([], [], num_sub_accelerators=2, total_flops=1e9, makespan_cycles_override=500.0)
        assert schedule.makespan_cycles == 500.0
        assert schedule.throughput_gflops > 0

    def test_empty_schedule_without_override_has_zero_makespan(self):
        schedule = Schedule([], [], num_sub_accelerators=1, total_flops=0.0)
        assert schedule.makespan_cycles == 0.0
        assert schedule.throughput_gflops == 0.0

    def test_core_busy_and_utilization(self):
        jobs = [_job(0, 0, 0, 100), _job(1, 0, 100, 200), _job(2, 1, 0, 50)]
        schedule = Schedule(jobs, [], num_sub_accelerators=2, total_flops=1.0)
        assert schedule.core_busy_cycles() == [200.0, 50.0]
        assert schedule.core_utilization() == [pytest.approx(1.0), pytest.approx(0.25)]

    def test_jobs_on_core_sorted_by_start(self):
        jobs = [_job(0, 0, 100, 200), _job(1, 0, 0, 90)]
        schedule = Schedule(jobs, [], num_sub_accelerators=1, total_flops=1.0)
        assert [j.job_index for j in schedule.jobs_on_core(0)] == [1, 0]

    def test_gantt_rows_grouped_by_core(self):
        jobs = [_job(0, 0, 0, 10), _job(1, 1, 0, 20), _job(2, 0, 10, 30)]
        schedule = Schedule(jobs, [], num_sub_accelerators=2, total_flops=1.0)
        rows = schedule.gantt_rows()
        assert [item[0] for item in rows[0]] == [0, 2]
        assert [item[0] for item in rows[1]] == [1]

    def test_validate_detects_overlap(self):
        jobs = [_job(0, 0, 0, 100), _job(1, 0, 50, 150)]
        schedule = Schedule(jobs, [], num_sub_accelerators=1, total_flops=1.0)
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_validate_accepts_back_to_back_jobs(self):
        jobs = [_job(0, 0, 0, 100), _job(1, 0, 100, 150)]
        Schedule(jobs, [], num_sub_accelerators=1, total_flops=1.0).validate()

    def test_bandwidth_timeline_matches_segments(self):
        segments = [
            BandwidthSegment(0.0, 10.0, (2.0, 3.0)),
            BandwidthSegment(10.0, 30.0, (1.0, 4.0)),
        ]
        schedule = Schedule([], segments, num_sub_accelerators=2, total_flops=1.0)
        timeline = schedule.bandwidth_timeline()
        assert timeline[0] == (0.0, 10.0, (2.0, 3.0))
        assert len(timeline) == 2

    def test_invalid_construction(self):
        with pytest.raises(SchedulingError):
            Schedule([], [], num_sub_accelerators=0, total_flops=1.0)
        with pytest.raises(SchedulingError):
            Schedule([], [], num_sub_accelerators=1, total_flops=-1.0)

    def test_average_slowdown(self):
        jobs = [
            ScheduledJob(0, 0, 0, 100, no_stall_latency_cycles=100, required_bw_gbps=1),
            ScheduledJob(1, 1, 0, 300, no_stall_latency_cycles=100, required_bw_gbps=1),
        ]
        schedule = Schedule(jobs, [], num_sub_accelerators=2, total_flops=1.0)
        assert schedule.average_slowdown() == pytest.approx(2.0)
