"""Tests for the unified :class:`EvalConfig` and its deprecation shim.

The contract under test: every entry point accepts ``eval_config=``, the
legacy ``eval_backend/eval_workers/eval_hosts/rpc_token`` kwargs still work
but warn, mixing the two styles fails loudly, and — the acceptance bar —
a search configured through the legacy kwargs is *bit-identical* to the
same search configured through ``EvalConfig``.
"""

import warnings

import pytest

from repro.core import EvalConfig, M3E
from repro.core.evalconfig import (
    DEFAULT_EVAL_BACKEND,
    EVAL_BACKENDS,
    resolve_eval_config,
)
from repro.exceptions import ConfigurationError
from repro.experiments.campaign import CampaignRunner


class TestEvalConfigValidation:
    def test_defaults(self):
        config = EvalConfig()
        assert config.backend == DEFAULT_EVAL_BACKEND
        assert config.workers is None and config.hosts is None
        assert config.rpc_token is None

    def test_every_registered_backend_constructs(self):
        for backend in EVAL_BACKENDS:
            assert EvalConfig(backend=backend).backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown evaluation backend"):
            EvalConfig(backend="gpu")

    def test_workers_only_for_parallel(self):
        assert EvalConfig(backend="parallel", workers=2).workers == 2
        with pytest.raises(ConfigurationError, match="parallel"):
            EvalConfig(backend="batch", workers=2)
        with pytest.raises(ConfigurationError, match=">= 1"):
            EvalConfig(backend="parallel", workers=0)

    def test_hosts_only_for_rpc_and_normalised_to_tuple(self):
        config = EvalConfig(backend="rpc", hosts="a:1, b:2")
        assert config.hosts == ("a:1", "b:2")
        assert EvalConfig(backend="rpc", hosts=["c:3"]).hosts == ("c:3",)
        with pytest.raises(ConfigurationError, match="rpc"):
            EvalConfig(backend="batch", hosts="a:1")
        with pytest.raises(ConfigurationError, match="rpc"):
            EvalConfig(backend="batch", rpc_token="secret")

    def test_malformed_rpc_hosts_fail_at_construction(self):
        with pytest.raises(ConfigurationError):
            EvalConfig(backend="rpc", hosts="no-port-here")

    def test_frozen_and_hashable(self):
        config = EvalConfig(backend="parallel", workers=2)
        with pytest.raises(AttributeError):
            config.backend = "batch"
        assert config == EvalConfig(backend="parallel", workers=2)
        assert hash(config) == hash(EvalConfig(backend="parallel", workers=2))

    def test_token_stays_out_of_repr(self):
        assert "hunter2" not in repr(EvalConfig(backend="rpc", rpc_token="hunter2"))

    def test_to_dict_round_trip(self):
        config = EvalConfig(backend="rpc", hosts="h:1", rpc_token="t")
        assert config.to_dict() == {
            "backend": "rpc",
            "workers": None,
            "hosts": ["h:1"],
            "rpc_token": "t",
        }


class TestResolveShim:
    def test_eval_config_passes_through_untouched(self):
        config = EvalConfig(backend="scalar")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_eval_config(config, where="here") is config

    def test_legacy_kwargs_build_identical_config_with_warning(self):
        with pytest.warns(DeprecationWarning, match="here.*deprecated"):
            resolved = resolve_eval_config(
                None, where="here", eval_backend="parallel", eval_workers=2
            )
        assert resolved == EvalConfig(backend="parallel", workers=2)

    def test_mixing_styles_fails_loudly(self):
        with pytest.raises(ConfigurationError, match="not both"):
            resolve_eval_config(
                EvalConfig(), where="here", eval_backend="scalar"
            )

    def test_non_evalconfig_object_rejected(self):
        with pytest.raises(ConfigurationError, match="must be an EvalConfig"):
            resolve_eval_config({"backend": "batch"}, where="here")

    def test_warn_on_filters_which_kwargs_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_eval_config(
                None,
                where="here",
                eval_backend="scalar",
                warn_on=("eval_hosts", "rpc_token"),
            )
        assert resolved.backend == "scalar"

    def test_no_kwargs_is_silent_default(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_eval_config(None, where="here") == EvalConfig()


class TestEntryPointsAcceptEvalConfig:
    def test_m3e_legacy_kwargs_warn_and_match_eval_config(self, small_platform, mix_group):
        new_style = M3E(
            small_platform, sampling_budget=60, eval_config=EvalConfig(backend="scalar")
        )
        with pytest.warns(DeprecationWarning):
            old_style = M3E(small_platform, sampling_budget=60, eval_backend="scalar")
        assert new_style.eval_config == old_style.eval_config
        # Acceptance: the two spellings produce bit-identical searches.
        a = new_style.search(mix_group, seed=7)
        b = old_style.search(mix_group, seed=7)
        assert a.best_encoding.tolist() == b.best_encoding.tolist()
        assert a.best_fitness == b.best_fitness
        assert a.history == b.history
        assert a.samples_used == b.samples_used

    def test_m3e_exposes_legacy_read_only_views(self, small_platform):
        engine = M3E(
            small_platform,
            eval_config=EvalConfig(backend="parallel", workers=2),
        )
        assert engine.eval_backend == "parallel"
        assert engine.eval_workers == 2
        assert engine.eval_hosts is None and engine.rpc_token is None

    def test_m3e_rejects_mixed_styles(self, small_platform):
        with pytest.raises(ConfigurationError, match="not both"):
            M3E(
                small_platform,
                eval_config=EvalConfig(),
                eval_backend="scalar",
            )

    def test_campaign_runner_threads_eval_config_through(self):
        runner = CampaignRunner(eval_config=EvalConfig(backend="scalar"))
        assert runner.eval_config == EvalConfig(backend="scalar")
        assert runner.eval_backend == "scalar"
        with pytest.warns(DeprecationWarning):
            legacy = CampaignRunner(eval_backend="scalar")
        assert legacy.eval_config == runner.eval_config

    def test_campaign_runner_default_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runner = CampaignRunner()
        assert runner.eval_config == EvalConfig()
