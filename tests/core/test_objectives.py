"""Tests for the optimization objectives."""

import pytest

from repro.core.objectives import (
    EDPObjective,
    EnergyObjective,
    LatencyObjective,
    PerformancePerWattObjective,
    ThroughputObjective,
    get_objective,
    list_objectives,
)
from repro.exceptions import ConfigurationError


@pytest.fixture()
def evaluated(evaluator):
    encoding = evaluator.codec.random_encoding(rng=0)
    mapping = evaluator.codec.decode(encoding)
    schedule = evaluator.allocator.allocate(mapping, evaluator.table)
    return schedule, mapping, evaluator.table


class TestRegistry:
    def test_lookup_by_name(self):
        assert isinstance(get_objective("throughput"), ThroughputObjective)
        assert isinstance(get_objective("EDP"), EDPObjective)

    def test_instance_passthrough(self):
        objective = LatencyObjective()
        assert get_objective(objective) is objective

    def test_unknown_objective(self):
        with pytest.raises(ConfigurationError):
            get_objective("happiness")

    def test_list_objectives_contains_all(self):
        names = list_objectives()
        assert {"throughput", "latency", "energy", "edp", "performance_per_watt"} <= set(names)


class TestObjectiveValues:
    def test_throughput_fitness_equals_report(self, evaluated):
        schedule, mapping, table = evaluated
        objective = ThroughputObjective()
        assert objective.fitness(schedule, mapping, table) == objective.report_value(schedule, mapping, table)
        assert objective.fitness(schedule, mapping, table) == pytest.approx(schedule.throughput_gflops)

    def test_latency_fitness_is_negated_makespan(self, evaluated):
        schedule, mapping, table = evaluated
        objective = LatencyObjective()
        assert objective.fitness(schedule, mapping, table) == -schedule.makespan_cycles
        assert objective.report_value(schedule, mapping, table) == schedule.makespan_cycles

    def test_energy_is_assignment_dependent_sum(self, evaluated):
        schedule, mapping, table = evaluated
        objective = EnergyObjective()
        value = objective.report_value(schedule, mapping, table)
        assert value > 0
        assert objective.fitness(schedule, mapping, table) == -value

    def test_edp_is_energy_times_delay(self, evaluated):
        schedule, mapping, table = evaluated
        energy = EnergyObjective().report_value(schedule, mapping, table)
        edp = EDPObjective().report_value(schedule, mapping, table)
        assert edp == pytest.approx(energy * schedule.makespan_seconds)

    def test_performance_per_watt_positive(self, evaluated):
        schedule, mapping, table = evaluated
        assert PerformancePerWattObjective().fitness(schedule, mapping, table) > 0

    def test_shorter_makespan_is_better_for_latency_objective(self, evaluator):
        objective = LatencyObjective()
        codec = evaluator.codec
        best = None
        for seed in range(6):
            mapping = codec.decode(codec.random_encoding(rng=seed))
            schedule = evaluator.allocator.allocate(mapping, evaluator.table)
            fitness = objective.fitness(schedule, mapping, evaluator.table)
            if best is None or fitness > best[0]:
                best = (fitness, schedule.makespan_cycles)
        assert best is not None
        assert best[0] == -best[1]
