"""Tests for the shared JSON serialization helpers."""

import dataclasses
import enum
import json

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.framework import M3E
from repro.utils.serialization import SearchResultSummary, jsonable
from repro.workloads import TaskType, build_task_workload


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass(frozen=True)
class Point:
    x: float
    label: str


class Slotted:
    """No ``__dict__`` at all — the old ``vars()`` fallback crashed here."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 1

    def __str__(self):
        return "slotted"


class TestJsonable:
    def test_passthrough_scalars(self):
        assert jsonable(1) == 1
        assert jsonable(1.5) == 1.5
        assert jsonable("x") == "x"
        assert jsonable(None) is None
        assert jsonable(True) is True

    def test_numpy_values(self):
        assert jsonable(np.float64(2.5)) == 2.5
        assert jsonable(np.int32(3)) == 3
        assert jsonable(np.array([[1, 2], [3, 4]])) == [[1, 2], [3, 4]]

    def test_enums_by_value_including_keys(self):
        assert jsonable(Color.RED) == "red"
        assert jsonable({TaskType.MIX: 1}) == {"mix": 1}

    def test_dataclasses_by_field(self):
        assert jsonable(Point(1.0, "a")) == {"x": 1.0, "label": "a"}

    def test_tuples_and_sets_become_lists(self):
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable({3}) == [3]

    def test_float_dict_keys_are_stringified(self):
        assert jsonable({1.0: "a"}) == {"1.0": "a"}

    def test_unknown_objects_fall_back_to_str(self):
        assert jsonable(Slotted()) == "slotted"

    def test_output_is_json_dumpable(self):
        payload = jsonable({"p": Point(1.0, "a"), "c": Color.RED, "a": np.arange(3)})
        assert json.loads(json.dumps(payload)) == {"p": {"x": 1.0, "label": "a"}, "c": "red", "a": [0, 1, 2]}


@pytest.fixture(scope="module")
def tiny_result():
    platform = build_setting("S1", 16.0)
    group = build_task_workload(
        TaskType.VISION, group_size=8, seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    return M3E(platform, sampling_budget=40).search(
        group, optimizer="stdga", seed=0, optimizer_options={"population_size": 8}
    )


class TestSearchResultSummary:
    def test_summary_captures_the_result(self, tiny_result):
        summary = SearchResultSummary.from_result(tiny_result)
        assert summary.optimizer_name == tiny_result.optimizer_name
        assert summary.best_fitness == tiny_result.best_fitness
        assert summary.throughput_gflops == tiny_result.throughput_gflops
        assert summary.samples_used == tiny_result.samples_used
        assert summary.history == list(tiny_result.history)
        assert summary.best_encoding == list(map(float, tiny_result.best_encoding))

    def test_round_trip_through_json(self, tiny_result):
        summary = SearchResultSummary.from_result(tiny_result)
        restored = SearchResultSummary.from_dict(json.loads(json.dumps(summary.to_dict())))
        assert restored == summary

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            SearchResultSummary.from_dict({"optimizer_name": "x", "bogus": 1})

    def test_jsonable_uses_the_summary_for_results(self, tiny_result):
        payload = jsonable(tiny_result)
        assert payload["optimizer_name"] == tiny_result.optimizer_name
        json.dumps(payload)
