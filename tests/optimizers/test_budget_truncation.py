"""Budget-truncation behaviour of the population-based optimizers.

When ``evaluate_population`` truncates a generation on budget exhaustion the
unevaluated rows carry ``-inf`` placeholder fitnesses.  Those rows must never
reach elite selection or mean recombination — CMA-ES and TBPSA used to
recombine their search distribution from unevaluated samples (and PSO / DE /
stdGA are audited here for the same pattern).
"""

import numpy as np
import pytest

from repro.core.evaluator import MappingEvaluator
from repro.optimizers import (
    CMAESOptimizer,
    DifferentialEvolutionOptimizer,
    PSOOptimizer,
    StandardGAOptimizer,
    TBPSAOptimizer,
)
from repro.optimizers.base import ranked_finite


class TestRankedFinite:
    def test_masks_minus_inf_rows(self):
        fitnesses = np.array([3.0, -np.inf, 7.0, -np.inf, 5.0])
        assert ranked_finite(fitnesses).tolist() == [2, 4, 0]

    def test_all_unevaluated_yields_empty(self):
        assert ranked_finite(np.full(4, -np.inf)).size == 0

    def test_ties_preserve_row_order(self):
        fitnesses = np.array([2.0, 5.0, 5.0, -np.inf, 5.0])
        assert ranked_finite(fitnesses).tolist() == [1, 2, 4, 0]


#: (name, factory) pairs; every population method must survive a budget that
#: truncates its very first generation (budget < population size).
TRUNCATING = [
    ("CMA", lambda: CMAESOptimizer(seed=0, population_size=16)),
    ("TBPSA", lambda: TBPSAOptimizer(seed=0, initial_population_size=16)),
    ("PSO", lambda: PSOOptimizer(seed=0, population_size=16)),
    ("DE", lambda: DifferentialEvolutionOptimizer(seed=0, population_size=16)),
    ("stdGA", lambda: StandardGAOptimizer(seed=0, population_size=16)),
]


@pytest.mark.parametrize("name,factory", TRUNCATING, ids=[t[0] for t in TRUNCATING])
class TestTruncatedGeneration:
    @pytest.mark.parametrize("budget", [5, 17, 23])
    def test_survives_truncation_and_returns_evaluated_best(
        self, name, factory, budget, small_platform, mix_group
    ):
        """The optimizer must spend exactly the budget, return a valid
        encoding, and report a best fitness that was actually measured."""
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=budget)
        best = factory().optimize(evaluator)
        assert evaluator.samples_used == budget
        assert best is not None
        evaluator.codec.validate(best)
        assert np.isfinite(evaluator.best_fitness)
        # The reported best is reproducible — it cannot come from a -inf row.
        assert evaluator.evaluate(best, count_sample=False) >= evaluator.best_fitness


class TestRecombinationExcludesUnevaluated:
    def test_cmaes_mean_ignores_minus_inf_rows(self, small_platform, mix_group):
        """With only one evaluated sample in the generation, the CMA-ES mean
        must move towards that sample alone — under the old behaviour half the
        generation's (unevaluated) rows entered the recombination."""
        budget = 1  # the single generation is truncated to one evaluated row
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=budget)
        optimizer = CMAESOptimizer(seed=3, population_size=16)
        best = optimizer.optimize(evaluator)
        assert evaluator.samples_used == 1
        assert best is not None
        assert np.isfinite(evaluator.best_fitness)

    def test_tbpsa_elite_ignores_minus_inf_rows(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=3)
        optimizer = TBPSAOptimizer(seed=3, initial_population_size=16)
        best = optimizer.optimize(evaluator)
        assert evaluator.samples_used == 3
        assert best is not None
        assert np.isfinite(evaluator.best_fitness)
