"""Tests for the MAGMA optimizer."""

import numpy as np
import pytest

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.magma import (
    MagmaConfig,
    MagmaOptimizer,
    magma_mutation_crossover_gen,
    magma_mutation_only,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = MagmaConfig()
        assert config.mutation_rate == 0.05
        assert config.crossover_gen_rate == 0.9
        assert config.crossover_rg_rate == 0.05
        assert config.crossover_accel_rate == 0.05

    def test_rejects_tiny_population(self):
        with pytest.raises(OptimizationError):
            MagmaConfig(population_size=1)

    def test_rejects_bad_rates(self):
        with pytest.raises(OptimizationError):
            MagmaConfig(mutation_rate=1.5)
        with pytest.raises(OptimizationError):
            MagmaConfig(elite_ratio=1.0)

    def test_config_and_overrides_are_exclusive(self):
        with pytest.raises(OptimizationError):
            MagmaOptimizer(config=MagmaConfig(), population_size=10)


class TestSearchBehaviour:
    def test_finds_mapping_within_budget(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=150)
        optimizer = MagmaOptimizer(seed=0, population_size=12)
        best = optimizer.optimize(evaluator)
        assert best is not None
        assert evaluator.samples_used <= 150
        assert optimizer.metadata["generations"] >= 1

    def test_returned_encoding_is_the_best_seen(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=150)
        optimizer = MagmaOptimizer(seed=1, population_size=12)
        best = optimizer.optimize(evaluator)
        assert evaluator.evaluate(best, count_sample=False) == pytest.approx(evaluator.best_fitness)

    def test_deterministic_given_seed(self, small_platform, mix_group):
        results = []
        for _ in range(2):
            evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=120)
            optimizer = MagmaOptimizer(seed=42, population_size=12)
            optimizer.optimize(evaluator)
            results.append(evaluator.best_fitness)
        assert results[0] == pytest.approx(results[1])

    def test_improves_over_initial_population(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=400)
        optimizer = MagmaOptimizer(seed=3, population_size=16)
        optimizer.optimize(evaluator)
        history = evaluator.history
        initial_best = max(history[:16])
        assert evaluator.best_fitness >= initial_best

    def test_elitism_follows_actual_population_size(self, small_platform, mix_group):
        """Regression: num_elites was derived from cfg.population_size, which
        desynchronizes elitism when warm-start seeds grow the population."""
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=200)
        optimizer = MagmaOptimizer(seed=7, population_size=4, elite_ratio=0.5)
        # 12 warm-start seeds > population_size=4: the population is 12-wide.
        seeds = evaluator.codec.random_population(12, rng=8)
        population = optimizer._initial_population(evaluator, 4, seeds)
        assert len(population) == 12
        fitnesses = evaluator.evaluate_population(population)
        next_population, next_fitnesses = optimizer._next_generation(
            evaluator, population, fitnesses
        )
        # Generation size is preserved and elites count follows the actual
        # population (6 = 0.5 * 12), not the configured size (2 = 0.5 * 4).
        assert len(next_population) == 12
        assert len(next_fitnesses) == 12
        order = np.argsort(fitnesses)[::-1]
        expected_elites = population[order][:6]
        assert np.array_equal(next_population[:6], expected_elites)

    def test_warm_start_population_is_used(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=40)
        seed_encoding = evaluator.codec.random_encoding(rng=5)
        optimizer = MagmaOptimizer(seed=6, population_size=8)
        optimizer.optimize(evaluator, initial_encodings=seed_encoding[None, :])
        # The seeded encoding is evaluated first, so its fitness appears in the history.
        seeded_fitness = evaluator.evaluate(seed_encoding, count_sample=False)
        assert evaluator.history[0] == pytest.approx(seeded_fitness)


class TestAblationVariants:
    def test_mutation_only_disables_crossovers(self):
        optimizer = magma_mutation_only(seed=0)
        assert optimizer.config.enable_crossover_gen is False
        assert optimizer.config.enable_crossover_rg is False
        assert optimizer.config.enable_crossover_accel is False
        assert optimizer.name == "MAGMA-mut"

    def test_mut_gen_variant_enables_only_crossover_gen(self):
        optimizer = magma_mutation_crossover_gen(seed=0)
        assert optimizer.config.enable_crossover_gen is True
        assert optimizer.config.enable_crossover_rg is False
        assert optimizer.config.enable_crossover_accel is False

    def test_all_variants_run(self, small_platform, mix_group):
        for factory in (magma_mutation_only, magma_mutation_crossover_gen):
            evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=60)
            best = factory(seed=0, population_size=10).optimize(evaluator)
            assert best is not None
