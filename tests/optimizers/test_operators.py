"""Tests for MAGMA's genetic operators."""

import numpy as np
import pytest

from repro.core.encoding import MappingCodec
from repro.optimizers import operators


@pytest.fixture()
def codec() -> MappingCodec:
    return MappingCodec(num_jobs=10, num_sub_accelerators=4)


@pytest.fixture()
def parents(codec):
    rng = np.random.default_rng(0)
    return codec.random_encoding(rng), codec.random_encoding(rng)


class TestMutation:
    def test_mutation_preserves_validity(self, codec, parents):
        child = operators.mutate(parents[0], codec, rng=1, mutation_rate=0.5)
        codec.validate(child)
        mapping = codec.decode(child)
        assert mapping.num_jobs == 10

    def test_zero_rate_is_identity(self, codec, parents):
        child = operators.mutate(parents[0], codec, rng=1, mutation_rate=0.0)
        assert np.array_equal(child, parents[0])

    def test_full_rate_changes_most_genes(self, codec, parents):
        child = operators.mutate(parents[0], codec, rng=1, mutation_rate=1.0)
        assert np.sum(child != parents[0]) > codec.genome_length

    def test_parent_not_modified_in_place(self, codec, parents):
        original = parents[0].copy()
        operators.mutate(parents[0], codec, rng=2, mutation_rate=1.0)
        assert np.array_equal(parents[0], original)

    def test_mutated_selection_genes_stay_in_range(self, codec, parents):
        child = operators.mutate(parents[0], codec, rng=3, mutation_rate=1.0)
        selection = child[: codec.genome_length]
        assert np.all((selection >= 0) & (selection < codec.num_sub_accelerators))


class TestCrossoverGen:
    def test_only_one_genome_is_touched(self, codec, parents):
        dad, mom = parents
        son, daughter = operators.crossover_gen(dad, mom, codec, rng=5)
        genome = codec.genome_length
        selection_changed = not np.array_equal(son[:genome], dad[:genome])
        priority_changed = not np.array_equal(son[genome:], dad[genome:])
        # Exactly one of the two genomes may change (the other is preserved).
        assert not (selection_changed and priority_changed)

    def test_children_are_gene_swaps_of_parents(self, codec, parents):
        dad, mom = parents
        son, daughter = operators.crossover_gen(dad, mom, codec, rng=7)
        for position in range(codec.encoding_length):
            assert son[position] in (dad[position], mom[position])
            assert daughter[position] in (dad[position], mom[position])

    def test_material_is_conserved(self, codec, parents):
        dad, mom = parents
        son, daughter = operators.crossover_gen(dad, mom, codec, rng=9)
        assert np.allclose(np.sort(np.concatenate([son, daughter])),
                           np.sort(np.concatenate([dad, mom])))


class TestCrossoverRg:
    def test_both_genomes_swapped_over_same_range(self, codec, parents):
        dad, mom = parents
        son, _ = operators.crossover_rg(dad, mom, codec, rng=11)
        genome = codec.genome_length
        selection_diff = np.flatnonzero(son[:genome] != dad[:genome])
        priority_diff = np.flatnonzero(son[genome:] != dad[genome:])
        # Any job whose selection gene came from mom also took mom's priority
        # gene (cross-genome dependency preserved), up to coincidental equality.
        for job in selection_diff:
            assert son[genome + job] == mom[genome + job]
        for job in priority_diff:
            assert son[job] == mom[job]

    def test_material_is_conserved(self, codec, parents):
        dad, mom = parents
        son, daughter = operators.crossover_rg(dad, mom, codec, rng=13)
        assert np.allclose(np.sort(np.concatenate([son, daughter])),
                           np.sort(np.concatenate([dad, mom])))

    def test_single_job_codec_handled(self):
        codec = MappingCodec(num_jobs=1, num_sub_accelerators=2)
        dad = codec.random_encoding(rng=0)
        mom = codec.random_encoding(rng=1)
        son, daughter = operators.crossover_rg(dad, mom, codec, rng=2)
        assert np.array_equal(son, mom)
        assert np.array_equal(daughter, dad)


class TestCrossoverAccel:
    def test_moms_core_assignment_is_copied(self, codec, parents):
        dad, mom = parents
        rng = np.random.default_rng(17)
        son = operators.crossover_accel(dad, mom, codec, rng=rng)
        codec.validate(son)
        genome = codec.genome_length
        mom_selection = mom[:genome].astype(int)
        son_selection = son[:genome].astype(int)
        # Find the core whose jobs were copied: all of mom's jobs on it must
        # now be on the same core in the son with mom's priorities.
        copied_cores = [
            core
            for core in range(codec.num_sub_accelerators)
            if np.flatnonzero(mom_selection == core).size > 0
            and all(
                son_selection[j] == core and son[genome + j] == mom[genome + j]
                for j in np.flatnonzero(mom_selection == core)
            )
        ]
        assert copied_cores, "no core was copied from mom"

    def test_result_remains_valid_mapping(self, codec, parents):
        dad, mom = parents
        for seed in range(5):
            son = operators.crossover_accel(dad, mom, codec, rng=seed)
            mapping = codec.decode(son)
            assert sorted(j for core in mapping.assignments for j in core) == list(range(10))
