"""Tests for the manual mappers (Herald-like, AI-MT-like)."""

import numpy as np

from repro.core.evaluator import MappingEvaluator
from repro.optimizers import AIMTLikeMapper, HeraldLikeMapper


class TestHeraldLike:
    def test_produces_valid_mapping(self, evaluator):
        mapper = HeraldLikeMapper(seed=0)
        encoding = mapper.optimize(evaluator)
        mapping = evaluator.codec.decode(encoding)
        assert mapping.num_jobs == evaluator.codec.num_jobs

    def test_uses_single_sample(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=10)
        HeraldLikeMapper(seed=0).optimize(evaluator)
        assert evaluator.samples_used == 1

    def test_deterministic(self, small_platform, mix_group):
        encodings = []
        for _ in range(2):
            evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=10)
            encodings.append(HeraldLikeMapper(seed=0).optimize(evaluator))
        assert np.allclose(encodings[0], encodings[1])

    def test_avoids_catastrophic_lb_assignment(self, small_platform, mix_group):
        """Latency-greedy assignment never puts a job on a core where it is
        orders of magnitude slower while a fast core sits idle."""
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=10)
        encoding = HeraldLikeMapper(seed=0).optimize(evaluator)
        mapping = evaluator.codec.decode(encoding)
        table = evaluator.table
        # The per-core loads (in latency terms) should be reasonably balanced.
        loads = [
            sum(table.latency(j, core) for j in jobs)
            for core, jobs in enumerate(mapping.assignments)
        ]
        assert max(loads) < 100 * (min(loads) + 1)

    def test_orders_bandwidth_heavy_jobs_first(self, evaluator):
        encoding = HeraldLikeMapper(seed=0).optimize(evaluator)
        mapping = evaluator.codec.decode(encoding)
        table = evaluator.table
        for core, jobs in enumerate(mapping.assignments):
            bandwidths = [table.bandwidth(j, core) for j in jobs]
            assert bandwidths == sorted(bandwidths, reverse=True)

    def test_records_jobs_per_core_metadata(self, evaluator):
        mapper = HeraldLikeMapper(seed=0)
        mapper.optimize(evaluator)
        assert sum(mapper.metadata["jobs_per_core"]) == evaluator.codec.num_jobs


class TestAIMTLike:
    def test_produces_valid_mapping(self, evaluator):
        encoding = AIMTLikeMapper(seed=0).optimize(evaluator)
        mapping = evaluator.codec.decode(encoding)
        assert mapping.num_jobs == evaluator.codec.num_jobs

    def test_balances_job_counts_across_cores(self, evaluator):
        encoding = AIMTLikeMapper(seed=0).optimize(evaluator)
        mapping = evaluator.codec.decode(encoding)
        counts = mapping.jobs_per_core()
        assert max(counts) - min(counts) <= 1

    def test_worse_than_herald_on_heterogeneous_platform(self, s2_platform):
        """AI-MT assumes homogeneity, so it loses badly on S2 (paper Fig. 9)."""
        from repro.workloads import TaskType, build_task_workload

        group = build_task_workload(TaskType.MIX, group_size=24, seed=0,
                                    num_sub_accelerators=s2_platform.num_sub_accelerators)[0]
        herald_eval = MappingEvaluator(group, s2_platform, sampling_budget=10)
        aimt_eval = MappingEvaluator(group, s2_platform, sampling_budget=10)
        herald_fitness = herald_eval.evaluate(HeraldLikeMapper(seed=0).optimize(herald_eval), count_sample=False)
        aimt_fitness = aimt_eval.evaluate(AIMTLikeMapper(seed=0).optimize(aimt_eval), count_sample=False)
        assert herald_fitness > 2 * aimt_fitness

    def test_deterministic(self, small_platform, mix_group):
        encodings = []
        for _ in range(2):
            evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=10)
            encodings.append(AIMTLikeMapper(seed=0).optimize(evaluator))
        assert np.allclose(encodings[0], encodings[1])
