"""Tests for the optimizer registry."""

import pytest

from repro.exceptions import OptimizationError
from repro.optimizers import build_optimizer, list_optimizers
from repro.optimizers.base import BaseOptimizer
from repro.optimizers.magma import MagmaOptimizer
from repro.optimizers.registry import OPTIMIZER_REGISTRY, PAPER_COMPARISON_METHODS


class TestRegistry:
    def test_every_registered_name_builds(self):
        for name in OPTIMIZER_REGISTRY:
            optimizer = build_optimizer(name, seed=0)
            assert isinstance(optimizer, BaseOptimizer)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(build_optimizer("MAGMA", seed=0), MagmaOptimizer)

    def test_unknown_name_rejected(self):
        with pytest.raises(OptimizationError):
            build_optimizer("simulated-annealing")

    def test_options_are_forwarded(self):
        optimizer = build_optimizer("magma", seed=0, population_size=17)
        assert optimizer.config.population_size == 17

    def test_list_optimizers_contains_paper_methods(self):
        available = set(list_optimizers())
        assert {"magma", "stdga", "de", "cma", "pso", "tbpsa", "a2c", "ppo2",
                "herald-like", "ai-mt-like"} <= available

    def test_paper_comparison_list_matches_figure_order(self):
        assert PAPER_COMPARISON_METHODS[0] == "herald-like"
        assert PAPER_COMPARISON_METHODS[-1] == "magma"
        assert len(PAPER_COMPARISON_METHODS) == 10

    def test_each_paper_method_is_registered(self):
        for name in PAPER_COMPARISON_METHODS:
            assert name in OPTIMIZER_REGISTRY

    def test_display_names_are_distinct(self):
        names = {build_optimizer(name, seed=0).name for name in PAPER_COMPARISON_METHODS}
        assert len(names) == len(PAPER_COMPARISON_METHODS)
