"""Tests for the RL components: NumPy MLP, environment, A2C, PPO2."""

import numpy as np
import pytest

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers.rl.a2c import A2COptimizer
from repro.optimizers.rl.env import SequentialMappingEnv
from repro.optimizers.rl.nn import MLP, AdamOptimizer, RMSPropOptimizer, clip_gradients, softmax
from repro.optimizers.rl.ppo import PPOOptimizer


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP([6, 16, 16, 4], rng=0)
        out, _ = mlp.forward(np.zeros((5, 6)))
        assert out.shape == (5, 4)

    def test_requires_two_layer_sizes(self):
        with pytest.raises(OptimizationError):
            MLP([4], rng=0)

    def test_gradient_matches_finite_differences(self):
        """The analytical backward pass agrees with numerical differentiation."""
        rng = np.random.default_rng(0)
        mlp = MLP([3, 5, 2], rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_for(params):
            original = mlp.params
            mlp.params = params
            out, _ = mlp.forward(x)
            mlp.params = original
            return 0.5 * float(np.sum((out - target) ** 2))

        out, cache = mlp.forward(x)
        grads = mlp.backward(out - target, cache)
        epsilon = 1e-6
        for key in ("W0", "b1"):
            index = (0,) * mlp.params[key].ndim
            perturbed = {k: v.copy() for k, v in mlp.params.items()}
            perturbed[key][index] += epsilon
            numerical = (loss_for(perturbed) - loss_for(mlp.params)) / epsilon
            assert grads[key][index] == pytest.approx(numerical, rel=1e-3, abs=1e-5)

    def test_softmax_sums_to_one(self):
        probabilities = softmax(np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]]))
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities > 0)

    def test_gradient_clipping_bounds_norm(self):
        grads = {"W0": np.full((4, 4), 10.0)}
        clipped = clip_gradients(grads, max_norm=1.0)
        total = np.sqrt(sum(np.sum(g**2) for g in clipped.values()))
        assert total == pytest.approx(1.0)

    def test_rmsprop_and_adam_reduce_quadratic_loss(self):
        for optimizer in (RMSPropOptimizer(learning_rate=0.05), AdamOptimizer(learning_rate=0.05)):
            params = {"w": np.array([5.0])}
            for _ in range(200):
                grads = {"w": 2 * params["w"]}
                optimizer.step(params, grads)
            assert abs(params["w"][0]) < 1.0


class TestEnvironment:
    def test_episode_length_equals_group_size(self, evaluator):
        env = SequentialMappingEnv(evaluator, num_priority_buckets=3)
        observation = env.reset()
        assert observation.shape == (env.spec.observation_size,)
        done = False
        steps = 0
        while not done:
            _, reward, done = env.step(0)
            steps += 1
        assert steps == evaluator.codec.num_jobs
        assert reward > 0  # final reward is the mapping fitness

    def test_invalid_action_rejected(self, evaluator):
        env = SequentialMappingEnv(evaluator)
        env.reset()
        with pytest.raises(OptimizationError):
            env.step(env.spec.num_actions)

    def test_step_after_done_rejected(self, evaluator):
        env = SequentialMappingEnv(evaluator)
        env.reset()
        for _ in range(evaluator.codec.num_jobs):
            env.step(0)
        with pytest.raises(OptimizationError):
            env.step(0)

    def test_encoding_reflects_actions(self, evaluator):
        env = SequentialMappingEnv(evaluator, num_priority_buckets=2)
        env.reset()
        chosen_core = 1
        action = chosen_core * 2  # bucket 0 on core 1
        for _ in range(evaluator.codec.num_jobs):
            env.step(action)
        encoding = env.encoding()
        assert np.all(encoding[: evaluator.codec.num_jobs] == chosen_core)

    def test_each_episode_consumes_one_sample(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=5)
        env = SequentialMappingEnv(evaluator)
        for _ in range(3):
            env.reset()
            done = False
            while not done:
                _, _, done = env.step(0)
        assert evaluator.samples_used == 3


@pytest.mark.parametrize("factory", [
    lambda seed: A2COptimizer(seed=seed, hidden_size=16, num_hidden_layers=2, num_parallel_envs=2),
    lambda seed: PPOOptimizer(seed=seed, hidden_size=16, num_hidden_layers=2, episodes_per_rollout=2,
                              update_epochs=1, minibatch_size=32),
], ids=["A2C", "PPO2"])
class TestAgents:
    def test_respects_budget_and_returns_solution(self, factory, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=20)
        best = factory(0).optimize(evaluator)
        assert best is not None
        assert evaluator.samples_used <= 20
        evaluator.codec.validate(best)

    def test_metadata_reports_episodes(self, factory, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=16)
        optimizer = factory(1)
        optimizer.optimize(evaluator)
        assert optimizer.metadata["episodes"] >= 1

    def test_deterministic_given_seed(self, factory, small_platform, mix_group):
        fitnesses = []
        for _ in range(2):
            evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=12)
            factory(7).optimize(evaluator)
            fitnesses.append(evaluator.best_fitness)
        assert fitnesses[0] == pytest.approx(fitnesses[1])
