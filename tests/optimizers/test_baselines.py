"""Tests for the black-box optimization baselines (stdGA, DE, CMA-ES, PSO, TBPSA, random)."""

import pytest

from repro.core.evaluator import MappingEvaluator
from repro.exceptions import OptimizationError
from repro.optimizers import (
    CMAESOptimizer,
    DifferentialEvolutionOptimizer,
    PSOOptimizer,
    RandomSearchOptimizer,
    StandardGAOptimizer,
    TBPSAOptimizer,
)

BASELINES = [
    ("stdGA", lambda seed: StandardGAOptimizer(seed=seed, population_size=12)),
    ("DE", lambda seed: DifferentialEvolutionOptimizer(seed=seed, population_size=12)),
    ("CMA", lambda seed: CMAESOptimizer(seed=seed, population_size=12)),
    ("PSO", lambda seed: PSOOptimizer(seed=seed, population_size=12)),
    ("TBPSA", lambda seed: TBPSAOptimizer(seed=seed, initial_population_size=12)),
    ("Random", lambda seed: RandomSearchOptimizer(seed=seed, batch_size=12)),
]


@pytest.mark.parametrize("name,factory", BASELINES, ids=[b[0] for b in BASELINES])
class TestAllBaselines:
    def test_respects_budget_and_returns_valid_encoding(self, name, factory, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=100)
        optimizer = factory(seed=0)
        best = optimizer.optimize(evaluator)
        assert evaluator.samples_used <= 100
        assert best is not None
        evaluator.codec.validate(best)
        mapping = evaluator.codec.decode(best)
        assert mapping.num_jobs == mix_group.size

    def test_deterministic_given_seed(self, name, factory, small_platform, mix_group):
        fitnesses = []
        for _ in range(2):
            evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=80)
            factory(seed=11).optimize(evaluator)
            fitnesses.append(evaluator.best_fitness)
        assert fitnesses[0] == pytest.approx(fitnesses[1])

    def test_not_worse_than_first_random_sample(self, name, factory, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=200)
        factory(seed=2).optimize(evaluator)
        assert evaluator.best_fitness >= evaluator.history[0]


class TestConstructionValidation:
    def test_stdga_needs_population(self):
        with pytest.raises(OptimizationError):
            StandardGAOptimizer(population_size=1)

    def test_de_needs_population_of_four(self):
        with pytest.raises(OptimizationError):
            DifferentialEvolutionOptimizer(population_size=3)

    def test_cma_rejects_bad_sigma(self):
        with pytest.raises(OptimizationError):
            CMAESOptimizer(initial_sigma=0.0)

    def test_pso_rejects_bad_clamp(self):
        with pytest.raises(OptimizationError):
            PSOOptimizer(velocity_clamp=0.0)

    def test_tbpsa_rejects_bad_growth(self):
        with pytest.raises(OptimizationError):
            TBPSAOptimizer(growth_factor=1.0)


class TestPaperHyperparameters:
    def test_stdga_defaults(self):
        optimizer = StandardGAOptimizer()
        assert optimizer.mutation_rate == 0.1
        assert optimizer.crossover_rate == 0.1

    def test_de_defaults(self):
        optimizer = DifferentialEvolutionOptimizer()
        assert optimizer.local_weight == 0.8
        assert optimizer.global_weight == 0.8

    def test_pso_defaults(self):
        optimizer = PSOOptimizer()
        assert optimizer.global_best_weight == 0.8
        assert optimizer.personal_best_weight == 0.8
        assert optimizer.momentum == 1.6

    def test_tbpsa_starts_at_fifty(self):
        assert TBPSAOptimizer().initial_population_size == 50

    def test_cma_uses_elite_half(self, small_platform, mix_group):
        evaluator = MappingEvaluator(mix_group, small_platform, sampling_budget=60)
        optimizer = CMAESOptimizer(seed=0, population_size=12)
        optimizer.optimize(evaluator)
        assert optimizer.metadata["generations"] >= 1
