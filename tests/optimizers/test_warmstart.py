"""Tests for the warm-start engine (Section V-C / Table V)."""

import numpy as np
import pytest

from repro.core.encoding import MappingCodec
from repro.exceptions import OptimizationError
from repro.optimizers.warmstart import WarmStartEngine


@pytest.fixture()
def codec():
    return MappingCodec(num_jobs=8, num_sub_accelerators=3)


class TestRecordAndRecognise:
    def test_unknown_task_returns_none(self, codec):
        assert WarmStartEngine().suggest("vision", codec) is None

    def test_record_and_suggest_round_trip(self, codec):
        engine = WarmStartEngine()
        encoding = codec.random_encoding(rng=0)
        engine.record("mix", encoding, codec, fitness=10.0)
        assert engine.knows("mix")
        suggestion = engine.suggest("mix", codec, count=1)
        assert suggestion is not None
        assert np.allclose(suggestion[0], codec.repair(encoding))

    def test_better_solution_replaces_worse(self, codec):
        engine = WarmStartEngine()
        first = codec.random_encoding(rng=1)
        second = codec.random_encoding(rng=2)
        engine.record("vision", first, codec, fitness=5.0)
        engine.record("vision", second, codec, fitness=8.0)
        assert np.allclose(engine.suggest("vision", codec)[0], codec.repair(second))

    def test_worse_solution_does_not_replace(self, codec):
        engine = WarmStartEngine()
        first = codec.random_encoding(rng=1)
        second = codec.random_encoding(rng=2)
        engine.record("vision", first, codec, fitness=9.0)
        engine.record("vision", second, codec, fitness=3.0)
        assert np.allclose(engine.suggest("vision", codec)[0], codec.repair(first))

    def test_empty_task_key_rejected(self, codec):
        with pytest.raises(OptimizationError):
            WarmStartEngine().record("", codec.random_encoding(rng=0), codec, fitness=1.0)

    def test_clear_and_known_tasks(self, codec):
        engine = WarmStartEngine()
        engine.record("vision", codec.random_encoding(rng=0), codec, fitness=1.0)
        engine.record("language", codec.random_encoding(rng=1), codec, fitness=1.0)
        assert engine.known_tasks() == ["language", "vision"]
        engine.clear()
        assert engine.known_tasks() == []


class TestAdaptation:
    def test_suggestions_match_requested_count(self, codec):
        engine = WarmStartEngine()
        engine.record("mix", codec.random_encoding(rng=0), codec, fitness=1.0)
        suggestions = engine.suggest("mix", codec, count=5, rng=1)
        assert suggestions.shape == (5, codec.encoding_length)

    def test_perturbed_copies_remain_valid(self, codec):
        engine = WarmStartEngine()
        engine.record("mix", codec.random_encoding(rng=0), codec, fitness=1.0)
        suggestions = engine.suggest("mix", codec, count=6, rng=2, perturbation=0.5)
        for suggestion in suggestions:
            codec.validate(suggestion)
            mapping = codec.decode(suggestion)
            assert mapping.num_jobs == codec.num_jobs

    def test_adapts_to_larger_group(self, codec):
        engine = WarmStartEngine()
        engine.record("mix", codec.random_encoding(rng=0), codec, fitness=1.0)
        bigger = MappingCodec(num_jobs=20, num_sub_accelerators=3)
        suggestion = engine.suggest("mix", bigger)[0]
        bigger.validate(suggestion)
        assert suggestion.shape == (40,)

    def test_adapts_to_smaller_group_and_fewer_cores(self, codec):
        engine = WarmStartEngine()
        engine.record("mix", codec.random_encoding(rng=3), codec, fitness=1.0)
        smaller = MappingCodec(num_jobs=4, num_sub_accelerators=2)
        suggestion = engine.suggest("mix", smaller)[0]
        smaller.validate(suggestion)
        assert np.all(suggestion[:4] < 2)
