"""Tests for the MAGMA hyper-parameter tuner."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optimizers.hyperparams import HyperParameterSpace, MagmaHyperParameterTuner
from repro.optimizers.magma import MagmaConfig
from repro.workloads import TaskType, build_task_workload


class TestHyperParameterSpace:
    def test_sample_is_within_ranges(self):
        space = HyperParameterSpace()
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = space.sample(rng)
            assert config.population_size in space.population_sizes
            assert config.mutation_rate in space.mutation_rates
            assert config.crossover_gen_rate in space.crossover_gen_rates

    def test_neighbours_stay_in_space(self):
        space = HyperParameterSpace()
        rng = np.random.default_rng(1)
        base = space.sample(rng)
        for _ in range(20):
            neighbour = space.neighbours(base, rng)
            assert neighbour.population_size in space.population_sizes
            assert neighbour.elite_ratio in space.elite_ratios


class TestTuner:
    @pytest.fixture()
    def problems(self, small_platform):
        group = build_task_workload(TaskType.MIX, group_size=10, seed=0,
                                    num_sub_accelerators=small_platform.num_sub_accelerators)[0]
        return [(group, small_platform)]

    def test_requires_problems(self):
        with pytest.raises(OptimizationError):
            MagmaHyperParameterTuner(problems=[])

    def test_tune_returns_best_scoring_config(self, problems):
        space = HyperParameterSpace(
            population_sizes=(8,),
            elite_ratios=(0.25,),
            mutation_rates=(0.05, 0.2),
            crossover_gen_rates=(0.9,),
            crossover_rg_rates=(0.05,),
            crossover_accel_rates=(0.05,),
        )
        tuner = MagmaHyperParameterTuner(problems, sampling_budget_per_run=40, space=space, seed=0)
        best = tuner.tune(num_trials=3)
        assert isinstance(best, MagmaConfig)
        assert tuner.best_trial is not None
        assert best == tuner.best_trial.config
        assert len(tuner.trials) == 3

    def test_rejects_non_positive_trials(self, problems):
        tuner = MagmaHyperParameterTuner(problems, sampling_budget_per_run=20, seed=0)
        with pytest.raises(OptimizationError):
            tuner.tune(num_trials=0)

    def test_best_trial_none_before_tuning(self, problems):
        tuner = MagmaHyperParameterTuner(problems, sampling_budget_per_run=20, seed=0)
        assert tuner.best_trial is None
