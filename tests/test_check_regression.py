"""Unit tests for the CI benchmark-regression gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _MODULE_PATH)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _write(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))


@pytest.fixture()
def workspace(tmp_path):
    """A baselines file plus a healthy set of measured benchmarks."""
    baselines = tmp_path / "baselines.json"
    _write(baselines, {
        "BENCH_a.json": {"speedup": 3.0},
        "BENCH_b.json": {"speedup": 1.5, "requests_per_second": 100.0},
    })
    _write(tmp_path / "BENCH_a.json", {"status": "measured", "speedup": 12.4})
    _write(tmp_path / "BENCH_b.json",
           {"status": "measured", "speedup": 2.0, "requests_per_second": 18000.0})
    return tmp_path, baselines


class TestGate:
    def test_healthy_measurements_pass(self, workspace, capsys):
        tmp_path, baselines = workspace
        exit_code = check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        )
        assert exit_code == 0
        assert "benchmark regression gate: ok" in capsys.readouterr().out

    def test_synthetic_ratio_drop_fails(self, workspace, capsys):
        """The acceptance scenario: a speedup below its committed floor must
        fail the gate."""
        tmp_path, baselines = workspace
        _write(tmp_path / "BENCH_a.json", {"status": "measured", "speedup": 2.4})
        exit_code = check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        )
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "measured 2.4 < required 3" in out

    def test_skipped_benchmark_passes_with_reason(self, workspace, capsys):
        tmp_path, baselines = workspace
        _write(tmp_path / "BENCH_a.json",
               {"status": "skipped", "skip_reason": "runner has 1 core"})
        exit_code = check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        )
        assert exit_code == 0
        assert "runner has 1 core" in capsys.readouterr().out

    def test_skip_lists_every_floored_metric_explicitly(self, workspace, capsys):
        """A skip must enumerate the floors it leaves unmeasured, one line
        each, so skipped coverage is visible in the gate's output."""
        tmp_path, baselines = workspace
        _write(tmp_path / "BENCH_b.json",
               {"status": "skipped", "skip_reason": "runner has 1 core"})
        exit_code = check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        skip_lines = [line for line in out.splitlines()
                      if line.strip().startswith(check_regression.SKIP)]
        assert len(skip_lines) == 2
        assert any("speedup" in line for line in skip_lines)
        assert any("requests_per_second" in line for line in skip_lines)

    def test_skip_without_reason_fails(self, workspace, capsys):
        """'skipped' with no recorded reason is a silent coverage hole, not
        a pass."""
        tmp_path, baselines = workspace
        _write(tmp_path / "BENCH_a.json", {"status": "skipped"})
        exit_code = check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        )
        assert exit_code == 1
        assert "skipped without a recorded reason" in capsys.readouterr().out

    def test_missing_bench_file_fails(self, workspace):
        tmp_path, baselines = workspace
        (tmp_path / "BENCH_a.json").unlink()
        assert check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        ) == 1

    def test_missing_metric_fails(self, workspace):
        tmp_path, baselines = workspace
        _write(tmp_path / "BENCH_b.json", {"status": "measured", "speedup": 2.0})
        assert check_regression.main(
            ["--baselines", str(baselines), "--dir", str(tmp_path)]
        ) == 1

    def test_empty_baselines_rejected(self, tmp_path):
        baselines = tmp_path / "baselines.json"
        _write(baselines, {})
        with pytest.raises(ValueError):
            check_regression.load_baselines(str(baselines))


def _bench_constant(module_file: str, name: str) -> float:
    """A MIN_* floor constant as the benchmark module itself defines it."""
    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    spec = importlib.util.spec_from_file_location(
        module_file.removesuffix(".py"), bench_dir / module_file
    )
    module = importlib.util.module_from_spec(spec)
    # Some benchmark modules import siblings (e.g. profile_kernel); make the
    # benchmarks directory importable for the duration of the load, exactly
    # as pytest's rootdir-prepend collection does.
    sys.path.insert(0, str(bench_dir))
    try:
        spec.loader.exec_module(module)
    finally:
        sys.path.remove(str(bench_dir))
    return getattr(module, name)


class TestCommittedBaselines:
    def test_committed_floors_match_the_benchmarks_own_minimums(self):
        """The committed floors must agree with the MIN_* constants the
        benchmark files themselves assert, so the gate and the smoke tests
        can never disagree about what 'regressed' means."""
        committed = check_regression.load_baselines(str(check_regression.DEFAULT_BASELINES))
        expectations = {
            ("BENCH_batch_eval.json", "speedup"): (
                "test_batch_eval_speed.py", "MIN_SPEEDUP"),
            ("BENCH_parallel_eval.json", "speedup"): (
                "test_parallel_eval_speed.py", "MIN_SPEEDUP"),
            ("BENCH_rpc_eval.json", "speedup"): (
                "test_rpc_eval_speed.py", "MIN_SPEEDUP"),
            ("BENCH_kernel_sweep.json", "s2_row_events_per_second"): (
                "test_kernel_sweep.py", "MIN_S2_ROW_EVENTS_PER_SECOND"),
            ("BENCH_kernel_sweep.json", "s6_row_events_per_second"): (
                "test_kernel_sweep.py", "MIN_S6_ROW_EVENTS_PER_SECOND"),
            ("BENCH_frame_codec.json", "ndarray_frame_gb_per_second"): (
                "test_frame_codec_speed.py", "MIN_GB_PER_SECOND"),
            ("BENCH_dispatch_overhead.json", "chunks_per_second"): (
                "test_dispatch_overhead.py", "MIN_CHUNKS_PER_SECOND"),
        }
        for (bench_file, metric), (module_file, constant) in expectations.items():
            assert committed[bench_file][metric] == _bench_constant(module_file, constant), (
                f"{bench_file}:{metric} floor disagrees with "
                f"benchmarks/{module_file}:{constant}"
            )

    def test_gate_accepts_the_checked_in_bench_results(self):
        """The BENCH_*.json files committed at the repo root must pass their
        own gate (they are either healthy measurements or recorded skips)."""
        root = Path(__file__).resolve().parent.parent
        findings = check_regression.run(str(check_regression.DEFAULT_BASELINES), str(root))
        bad = [f for f in findings if f["status"] == check_regression.FAIL]
        assert not bad, bad
