"""Seed-consistency properties: one resolved seed, one result — everywhere.

The determinism contract (docs/DETERMINISM.md) promises that the *resolved*
seed fully determines a search: running the same cell twice with the same
seed must produce a bit-identical :class:`SearchResultSummary` through every
evaluation backend and through the mapping service's submit path.  These
tests also fence the classic display-vs-decision bug (a result whose printed
fitness came from a different stream than the acceptance decision): the
reported ``best_fitness`` must literally be the last entry of the search's
own best-so-far history.

The unset case is part of the contract too: under pytest, drawing unseeded
randomness is a hard error, never silent OS entropy.
"""

import numpy as np
import pytest

from repro.accelerator import build_setting
from repro.core.framework import M3E
from repro.exceptions import ConfigurationError
from repro.optimizers import build_optimizer, list_optimizers
from repro.service import MappingService
from repro.utils.rng import clear_global_seed, set_global_seed
from repro.utils.serialization import SearchResultSummary
from repro.workloads import TaskType, build_task_workload

#: Every evaluation backend; ``rpc`` with no hosts runs its local-fallback
#: rig, which the backend contract requires to be bit-identical anyway.
BACKENDS = ("scalar", "batch", "parallel", "rpc")

SEED = 1234


def _problem(group_size: int = 10):
    platform = build_setting("S1", 16.0)
    group = build_task_workload(
        TaskType.MIX,
        group_size=group_size,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    return platform, group


def _search(backend: str, seed, optimizer: str = "magma"):
    platform, group = _problem()
    kwargs = {}
    if backend == "parallel":
        kwargs["eval_workers"] = 2
    explorer = M3E(platform, sampling_budget=120, eval_backend=backend, **kwargs)
    return explorer.search(
        group,
        optimizer=optimizer,
        seed=seed,
        optimizer_options={"population_size": 8},
    )


class TestBackendSeedConsistency:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_same_seed_is_bit_identical_per_backend(self, backend):
        """Property: same resolved seed ⇒ bit-identical summary, per backend."""
        first = SearchResultSummary.from_result(_search(backend, SEED))
        second = SearchResultSummary.from_result(_search(backend, SEED))
        assert first.to_dict() == second.to_dict()

    @pytest.mark.parametrize("backend", ("batch", "parallel", "rpc"))
    def test_every_backend_matches_the_scalar_oracle(self, backend):
        """Standing invariant: backends are interchangeable at fixed seed."""
        oracle = SearchResultSummary.from_result(_search("scalar", SEED))
        other = SearchResultSummary.from_result(_search(backend, SEED))
        assert other.to_dict() == oracle.to_dict()

    def test_displayed_fitness_is_the_selection_fitness(self):
        """The reported best fitness must be the one the search's own history
        converged to — not a re-evaluation under some other stream."""
        result = _search("batch", SEED)
        assert result.history, "search must record a best-so-far history"
        assert result.best_fitness == result.history[-1]
        # History is best-so-far: monotone, and its max is the final value.
        assert result.best_fitness == max(result.history)

    def test_resolved_seed_recorded_in_metadata(self):
        result = _search("batch", SEED)
        assert result.metadata.get("resolved_seed") == SEED
        assert result.metadata.get("seed_source") == "explicit"


class TestServiceSeedConsistency:
    def _submit(self, tmp_path, tag: str, request: dict) -> SearchResultSummary:
        service = MappingService(
            store=str(tmp_path / f"solutions-{tag}.jsonl"), scale="tiny", workers=1
        )
        try:
            job = service.submit(request)
            return service.result(job.job_id, timeout=120)
        finally:
            service.close()

    def test_same_seed_submit_is_bit_identical_across_services(self, tmp_path):
        """Two fresh services (separate stores, separate processes in real
        deployments) answer the same seeded request bit-identically."""
        request = {"task": "vision", "setting": "S1", "seed": SEED}
        first = self._submit(tmp_path, "a", request)
        second = self._submit(tmp_path, "b", request)
        assert first.to_dict() == second.to_dict()

    def test_seedless_submit_resolves_to_a_concrete_stored_seed(self, tmp_path):
        """A request without a seed resolves at submit time (to the session
        seed, else 0), so the stored payload replays bit-identically."""
        service = MappingService(
            store=str(tmp_path / "solutions.jsonl"), scale="tiny", workers=1
        )
        try:
            job = service.submit({"task": "vision", "setting": "S1"})
            service.result(job.job_id, timeout=120)
            (record,) = service.store.records()
            assert record["request"]["seed"] == 0
        finally:
            service.close()

    def test_session_seed_governs_seedless_submits(self, tmp_path):
        set_global_seed(77, source="test")
        try:
            service = MappingService(
                store=str(tmp_path / "solutions.jsonl"), scale="tiny", workers=1
            )
            try:
                job = service.submit({"task": "vision", "setting": "S1"})
                service.result(job.job_id, timeout=120)
                (record,) = service.store.records()
                assert record["request"]["seed"] == 77
            finally:
                service.close()
        finally:
            clear_global_seed()


class TestUnseededIsAnError:
    def test_unseeded_search_raises_under_pytest(self):
        with pytest.raises(ConfigurationError, match="no random seed resolved"):
            _search("batch", None)

    def test_unseeded_optimizer_draw_raises_under_pytest(self):
        optimizer = build_optimizer("magma", population_size=8)
        with pytest.raises(ConfigurationError, match="no random seed resolved"):
            optimizer.rng.random()

    def test_session_seed_unblocks_and_pins_unseeded_runs(self):
        """With a session seed installed, seedless runs are deterministic:
        the same session seed reproduces the same result."""

        def run():
            clear_global_seed()
            set_global_seed(5, source="test")
            try:
                return SearchResultSummary.from_result(_search("batch", None))
            finally:
                clear_global_seed()

        first, second = run(), run()
        assert first.to_dict() == second.to_dict()

    def test_session_seeded_run_records_its_resolved_seed(self):
        clear_global_seed()
        set_global_seed(5, source="test")
        try:
            result = _search("batch", None)
            assert result.metadata.get("resolved_seed") == 5
            assert result.metadata.get("seed_source") == "test"
        finally:
            clear_global_seed()


class TestReseedRoundTrip:
    """reseed() must be indistinguishable from fresh construction.

    This covers every registered optimizer — including the RL agents, whose
    network-init generators historically survived a reseed — by comparing
    a fresh-constructed search against a construct-then-reseed search.
    """

    @pytest.mark.parametrize("method", sorted(list_optimizers()))
    def test_reseed_equals_fresh_construction(self, method):
        platform, group = _problem(group_size=8)

        fresh = build_optimizer(method, seed=SEED)
        stale = build_optimizer(method, seed=SEED + 999)
        stale.reseed(SEED)

        results = []
        for algorithm in (fresh, stale):
            explorer = M3E(platform, sampling_budget=60)
            result = explorer.search(group, optimizer=algorithm)
            results.append(SearchResultSummary.from_result(result).to_dict())
        assert results[0] == results[1]
