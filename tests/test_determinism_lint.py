"""Lint: all randomness in the library must flow through repro.utils.rng.

The seed policy (docs/DETERMINISM.md) only works if no module mints its own
entropy on the side.  This test scans the library source for the three ways
that happens — module-level ``np.random.*`` calls, the stdlib ``random``
module, and argless ``default_rng()`` — and fails with file:line positions.
The CI lint job runs the same check as a grep step, so a violation is caught
even when the test stage is skipped.

Allowed: ``repro/utils/rng.py`` itself (the one place entropy is handled),
attribute references like the ``np.random.Generator`` type annotation, and
seeded ``default_rng(seed)`` calls.
"""

import re
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The only file allowed to touch raw entropy sources.
ALLOWED = {Path("utils") / "rng.py"}

#: (description, pattern) pairs; patterns match *calls*, not annotations.
BANNED = [
    (
        "module-level numpy RNG call (np.random.<fn>(...)) — use "
        "repro.utils.rng.ensure_rng / SeedPolicy.stream instead",
        re.compile(r"\bnp\.random\.(?!default_rng\b|Generator\b|SeedSequence\b)\w+\s*\("),
    ),
    (
        "stdlib random module call — use repro.utils.rng instead",
        re.compile(r"(?<![\w.])random\.(?:seed|random|randint|randrange|choice|choices|"
                   r"shuffle|sample|uniform|gauss|betavariate|expovariate)\s*\("),
    ),
    (
        "argless default_rng() mints OS entropy — resolve a seed through "
        "repro.utils.rng (ensure_rng(None) applies the seed policy)",
        re.compile(r"\bdefault_rng\(\s*\)"),
    ),
]


def iter_source_files():
    for path in sorted(SRC_ROOT.rglob("*.py")):
        if path.relative_to(SRC_ROOT) in ALLOWED:
            continue
        yield path


def test_no_naked_randomness_outside_rng_module():
    violations = []
    for path in iter_source_files():
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            stripped = line.split("#", 1)[0]
            for description, pattern in BANNED:
                if pattern.search(stripped):
                    violations.append(
                        f"{path.relative_to(SRC_ROOT.parent.parent)}:{lineno}: "
                        f"{description}\n    {line.strip()}"
                    )
    assert not violations, (
        "naked randomness outside repro/utils/rng.py (see docs/DETERMINISM.md):\n"
        + "\n".join(violations)
    )


def test_lint_actually_detects_violations(tmp_path):
    """The banned patterns must catch the real offences (no dead regexes)."""
    offending = [
        "x = np.random.rand(3)",
        "random.seed(42)",
        "rng = default_rng()",
    ]
    clean = [
        "rng: np.random.Generator = ensure_rng(seed)",
        "seq = np.random.SeedSequence(seed)",
        "rng = np.random.default_rng(seed)",
        "rng = default_rng(seed)",
        "self.rng.random(size)",
    ]
    for line in offending:
        assert any(p.search(line) for _, p in BANNED), f"lint misses: {line}"
    for line in clean:
        assert not any(p.search(line) for _, p in BANNED), f"lint over-bans: {line}"
