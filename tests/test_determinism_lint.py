"""Lint: all randomness in the library must flow through repro.utils.rng.

The seed policy (docs/DETERMINISM.md) only works if no module mints its own
entropy on the side.  This gate is now the AST-based determinism checker
(``repro-magma lint --select RPL1``, RPL101–RPL105 in
docs/STATIC_ANALYSIS.md), which replaced the original regex scan: it
resolves import aliases (``from numpy import random``), distinguishes calls
from annotations without heuristics, and additionally bans OS entropy
(``os.urandom``/``uuid4``) and time-derived seeds.

This file keeps the regex lint's original true-positive/clean corpus and
asserts the AST checker subsumes it, then runs the checker over the whole
library source.  ``repro/utils/rng.py`` — the one entropy boundary — needs
no allowlist anymore: its single deliberate OS-entropy fallback carries an
inline ``# repro-lint: disable=RPL103`` waiver with rationale.
"""

import textwrap
from pathlib import Path

from repro.tools.lint import lint_paths, lint_source

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The retired regex lint's corpus, wrapped with the imports real modules
#: carry (the AST checker resolves names through imports, not spelling).
CORPUS_PREAMBLE = textwrap.dedent(
    """
    import random

    import numpy as np
    from numpy.random import default_rng

    from repro.utils.rng import ensure_rng

    seed = 1234
    size = 4
    """
)

#: (line, code it must trigger) — the regex lint's true positives.
OFFENDING = [
    ("x = np.random.rand(3)", "RPL101"),
    ("random.seed(42)", "RPL102"),
    ("rng = default_rng()", "RPL103"),
]

#: Lines the regex lint had to stay quiet on; the AST checker must too.
CLEAN = [
    "rng: np.random.Generator = ensure_rng(seed)",
    "seq = np.random.SeedSequence(seed)",
    "rng = np.random.default_rng(seed)",
    "rng = default_rng(seed)",
    "self.rng.random(size)",
]


def determinism_codes(line):
    source = CORPUS_PREAMBLE + line + "\n"
    report = lint_source(source, path="corpus.py", select="RPL1")
    return [finding.code for finding in report.unsuppressed]


def test_no_naked_randomness_outside_rng_module():
    report = lint_paths([str(SRC_ROOT)], select="RPL1")
    rendered = "\n".join(f.render() for f in report.unsuppressed)
    assert not report.unsuppressed, (
        "naked randomness in the library (see docs/DETERMINISM.md and "
        f"docs/STATIC_ANALYSIS.md):\n{rendered}"
    )


def test_lint_actually_detects_violations():
    """The AST checker must subsume the old regex corpus (no dead checks)."""
    for line, expected in OFFENDING:
        assert expected in determinism_codes(line), f"lint misses: {line}"
    for line in CLEAN:
        assert determinism_codes(line) == [], f"lint over-bans: {line}"


def test_catches_what_the_regex_lint_missed():
    """The upgrade cases that motivated the AST port (ISSUE 7)."""
    aliased = CORPUS_PREAMBLE + "from numpy import random as nprand\nx = nprand.rand(3)\n"
    report = lint_source(aliased, path="corpus.py", select="RPL1")
    assert "RPL101" in [f.code for f in report.unsuppressed]

    timed = CORPUS_PREAMBLE + "import time\nrng = default_rng(int(time.time()))\n"
    report = lint_source(timed, path="corpus.py", select="RPL1")
    assert "RPL105" in [f.code for f in report.unsuppressed]
