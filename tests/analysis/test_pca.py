"""Tests for the PCA projection of explored mappings."""

import numpy as np
import pytest

from repro.analysis.pca import fit_pca, project_encodings
from repro.exceptions import ExperimentError


class TestFit:
    def test_requires_two_samples(self):
        with pytest.raises(ExperimentError):
            fit_pca(np.ones((1, 4)))

    def test_projection_shape(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(50, 8))
        projection = fit_pca(data)
        projected = projection.transform(data)
        assert projected.shape == (50, 2)

    def test_dimension_mismatch_rejected(self):
        projection = fit_pca(np.random.default_rng(0).normal(size=(10, 4)))
        with pytest.raises(ExperimentError):
            projection.transform(np.ones((3, 5)))

    def test_principal_axis_captures_dominant_variance(self):
        rng = np.random.default_rng(1)
        # Variance concentrated along the first coordinate.
        data = np.column_stack([rng.normal(0, 10, 200), rng.normal(0, 0.1, 200)])
        projection = fit_pca(data)
        assert projection.explained_variance_ratio[0] > 0.95

    def test_explained_variance_ratios_sum_below_one(self):
        rng = np.random.default_rng(2)
        projection = fit_pca(rng.normal(size=(30, 6)))
        assert 0 < projection.explained_variance_ratio.sum() <= 1.0 + 1e-9


class TestProjectEncodings:
    def test_shared_projection_across_methods(self):
        rng = np.random.default_rng(3)
        methods = {
            "a": rng.normal(size=(20, 6)),
            "b": rng.normal(loc=5.0, size=(30, 6)),
        }
        projected = project_encodings(methods)
        assert set(projected) == {"a", "b"}
        assert projected["a"].shape == (20, 2)
        assert projected["b"].shape == (30, 2)
        # The two clusters stay separated in the shared projected space.
        assert abs(projected["a"][:, 0].mean() - projected["b"][:, 0].mean()) > 1.0

    def test_empty_input(self):
        assert project_encodings({}) == {}
