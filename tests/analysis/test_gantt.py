"""Tests for the schedule visualisation helpers."""

import pytest

from repro.analysis.gantt import render_ascii_gantt, schedule_to_bandwidth_series, schedule_to_gantt
from repro.exceptions import ExperimentError


@pytest.fixture()
def schedule(evaluator):
    encoding = evaluator.codec.random_encoding(rng=0)
    return evaluator.schedule_for(encoding)


class TestGanttExtraction:
    def test_every_job_has_an_entry(self, schedule, mix_group):
        entries = schedule_to_gantt(schedule, mix_group)
        assert len(entries) == mix_group.size
        assert sorted(e.job_index for e in entries) == list(range(mix_group.size))

    def test_entries_sorted_by_core_then_time(self, schedule):
        entries = schedule_to_gantt(schedule)
        keys = [(e.core, e.start_cycle) for e in entries]
        assert keys == sorted(keys)

    def test_labels_include_task_type_when_group_given(self, schedule, mix_group):
        entries = schedule_to_gantt(schedule, mix_group)
        assert any(entry.label.split(":")[0] in {"vision", "language", "recommendation"}
                   for entry in entries)


class TestBandwidthSeries:
    def test_series_per_core(self, schedule):
        series = schedule_to_bandwidth_series(schedule)
        assert set(series) == set(range(schedule.num_sub_accelerators))
        for points in series.values():
            assert points[-1][0] == pytest.approx(schedule.makespan_cycles)

    def test_allocations_non_negative(self, schedule):
        series = schedule_to_bandwidth_series(schedule)
        for points in series.values():
            assert all(value >= 0 for _, value in points)


class TestAsciiRendering:
    def test_renders_one_row_per_core(self, schedule, mix_group):
        text = render_ascii_gantt(schedule, mix_group, width=60)
        lines = text.splitlines()
        assert len(lines) == 1 + schedule.num_sub_accelerators
        assert "makespan" in lines[0]

    def test_rejects_tiny_width(self, schedule):
        with pytest.raises(ExperimentError):
            render_ascii_gantt(schedule, width=5)

    def test_empty_schedule_renders_placeholder(self):
        from repro.core.schedule import Schedule

        empty = Schedule([], [], num_sub_accelerators=2, total_flops=0.0)
        assert render_ascii_gantt(empty) == "(empty schedule)"
