"""Tests for comparison reporting (normalised throughputs, geomean speedups)."""

import pytest

from repro.analysis.reporting import ComparisonReport, normalized_throughputs, speedup_summary
from repro.core.framework import M3E
from repro.exceptions import ExperimentError
from repro.utils.tables import format_table, geometric_mean, normalize_by


@pytest.fixture()
def two_method_results(small_platform, mix_group):
    explorer = M3E(small_platform, sampling_budget=40)
    results = explorer.compare(mix_group, optimizers=["herald-like", "magma"], seed=0)
    return results


class TestNormalisation:
    def test_reference_is_one(self, two_method_results):
        normalised = normalized_throughputs(two_method_results, reference="MAGMA")
        assert normalised["MAGMA"] == pytest.approx(1.0)

    def test_missing_reference_rejected(self, two_method_results):
        with pytest.raises(ExperimentError):
            normalized_throughputs(two_method_results, reference="NotThere")

    def test_speedup_summary_geomean(self, two_method_results):
        summary = speedup_summary({"mix": two_method_results}, reference="MAGMA")
        assert "Herald-like" in summary
        assert summary["Herald-like"] > 0
        assert "MAGMA" not in summary


class TestComparisonReport:
    def test_rows_sorted_by_throughput(self, two_method_results):
        report = ComparisonReport(title="test")
        for result in two_method_results.values():
            report.add(result)
        rows = report.to_rows()
        assert rows[0][1] >= rows[1][1]

    def test_best_method(self, two_method_results):
        report = ComparisonReport(title="test")
        for result in two_method_results.values():
            report.add(result)
        best = report.best_method
        assert best in two_method_results
        assert report.results[best].throughput_gflops == max(
            r.throughput_gflops for r in two_method_results.values()
        )

    def test_empty_report(self):
        assert ComparisonReport(title="empty").best_method is None

    def test_to_text_contains_title_and_methods(self, two_method_results):
        report = ComparisonReport(title="Mix on tiny platform")
        for result in two_method_results.values():
            report.add(result)
        text = report.to_text()
        assert "Mix on tiny platform" in text
        assert "MAGMA" in text and "Herald-like" in text


class TestTableHelpers:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_normalize_by(self):
        values = {"a": 2.0, "b": 4.0}
        assert normalize_by(values, "b") == {"a": 0.5, "b": 1.0}
        with pytest.raises(KeyError):
            normalize_by(values, "c")

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["magma", 1.23456], ["herald", 2e-7]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "magma" in lines[2]
