"""Tests for the convergence-curve utilities."""

import numpy as np
import pytest

from repro.analysis.convergence import align_curves, convergence_from_history, sample_efficiency
from repro.exceptions import ExperimentError


class TestConvergenceCurve:
    def test_curve_from_history_preserves_endpoints(self):
        history = [1.0, 2.0, 2.0, 5.0, 7.0]
        curve = convergence_from_history("x", history)
        assert curve.final_value == 7.0
        assert curve.samples[0] == 1
        assert curve.samples[-1] == 5

    def test_downsampling_limits_points(self):
        history = list(np.linspace(0, 100, 5000))
        curve = convergence_from_history("x", history, max_points=50)
        assert len(curve.samples) <= 50
        assert curve.final_value == pytest.approx(100.0)

    def test_value_at_clamps_to_range(self):
        curve = convergence_from_history("x", [1.0, 3.0, 9.0])
        assert curve.value_at(0) == 1.0
        assert curve.value_at(2) == 3.0
        assert curve.value_at(100) == 9.0

    def test_samples_to_reach_fraction(self):
        curve = convergence_from_history("x", [1.0, 5.0, 9.0, 10.0])
        assert curve.samples_to_reach(0.5) == 2
        assert curve.samples_to_reach(1.0) == 4

    def test_samples_to_reach_rejects_bad_fraction(self):
        curve = convergence_from_history("x", [1.0])
        with pytest.raises(ExperimentError):
            curve.samples_to_reach(0.0)

    def test_empty_history(self):
        curve = convergence_from_history("x", [])
        assert np.isnan(curve.final_value)
        assert curve.samples_to_reach(0.9) is None


class TestAggregation:
    def test_sample_efficiency_over_methods(self):
        curves = {
            "fast": convergence_from_history("fast", [9.0, 10.0, 10.0, 10.0]),
            "slow": convergence_from_history("slow", [1.0, 2.0, 5.0, 10.0]),
        }
        efficiency = sample_efficiency(curves, fraction=0.95)
        assert efficiency["fast"] < efficiency["slow"]

    def test_align_curves_common_grid(self):
        curves = [
            convergence_from_history("a", [1.0, 2.0, 3.0]),
            convergence_from_history("b", list(np.linspace(0, 5, 10))),
        ]
        aligned = align_curves(curves, num_points=5)
        assert "samples" in aligned and "a" in aligned and "b" in aligned
        assert len(aligned["a"]) == len(aligned["samples"])

    def test_align_empty(self):
        assert align_curves([]) == {}
