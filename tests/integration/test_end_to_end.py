"""End-to-end integration tests across the whole stack.

These tests exercise the full pipeline — model zoo -> workload -> analysis
table -> search -> schedule — on the paper's preset platforms, and check the
qualitative relationships the paper's headline claims rest on.
"""

import numpy as np

from repro import (
    M3E,
    JobAnalyzer,
    TaskType,
    build_setting,
    build_task_workload,
)
from repro.analysis.reporting import normalized_throughputs


class TestFullPipeline:
    def test_quickstart_flow(self):
        platform = build_setting("S2", 16.0)
        group = build_task_workload(TaskType.MIX, group_size=16, seed=0,
                                    num_sub_accelerators=platform.num_sub_accelerators)[0]
        explorer = M3E(platform, sampling_budget=200)
        result = explorer.search(group, optimizer="magma", seed=0,
                                 optimizer_options={"population_size": 16})
        assert result.throughput_gflops > 0
        result.schedule.validate()
        # Every job appears exactly once in the final schedule.
        assert sorted(j.job_index for j in result.schedule.jobs) == list(range(group.size))

    def test_throughput_bounded_by_platform_peak(self):
        platform = build_setting("S1", 16.0)
        group = build_task_workload(TaskType.VISION, group_size=16, seed=1,
                                    num_sub_accelerators=platform.num_sub_accelerators)[0]
        explorer = M3E(platform, sampling_budget=150)
        result = explorer.search(group, optimizer="magma", seed=0,
                                 optimizer_options={"population_size": 12})
        assert result.throughput_gflops <= platform.peak_gflops

    def test_more_bandwidth_never_hurts(self):
        group = build_task_workload(TaskType.MIX, group_size=16, seed=2, num_sub_accelerators=4)[0]
        throughputs = []
        for bw in (1.0, 16.0):
            platform = build_setting("S2", bw)
            explorer = M3E(platform, sampling_budget=150)
            result = explorer.search(group, optimizer="herald-like", seed=0)
            throughputs.append(result.throughput_gflops)
        assert throughputs[1] >= throughputs[0]

    def test_magma_beats_manual_mappers_on_heterogeneous_mix(self):
        """The paper's headline: the learned mapping beats the manual ones."""
        platform = build_setting("S2", 16.0)
        group = build_task_workload(TaskType.MIX, group_size=24, seed=3,
                                    num_sub_accelerators=platform.num_sub_accelerators)[0]
        explorer = M3E(platform, sampling_budget=800)
        results = explorer.compare(group, optimizers=["ai-mt-like", "magma"], seed=0)
        normalised = normalized_throughputs(results, reference="MAGMA")
        assert normalised["AI-MT-like"] < 1.0

    def test_objectives_can_be_swapped(self):
        platform = build_setting("S1", 16.0)
        group = build_task_workload(TaskType.RECOMMENDATION, group_size=12, seed=4,
                                    num_sub_accelerators=platform.num_sub_accelerators)[0]
        for objective in ("throughput", "latency", "energy", "edp"):
            explorer = M3E(platform, objective=objective, sampling_budget=60)
            result = explorer.search(group, optimizer="stdga", seed=0,
                                     optimizer_options={"population_size": 10})
            assert np.isfinite(result.best_fitness)

    def test_large_heterogeneous_platform_runs(self):
        platform = build_setting("S4", 256.0)
        group = build_task_workload(TaskType.MIX, group_size=16, seed=5,
                                    num_sub_accelerators=platform.num_sub_accelerators)[0]
        explorer = M3E(platform, sampling_budget=100)
        result = explorer.search(group, optimizer="magma", seed=0,
                                 optimizer_options={"population_size": 12})
        assert result.best_mapping.num_sub_accelerators == 8

    def test_flexible_platform_not_slower_per_job(self):
        """Flexible PE arrays reduce (or preserve) per-job no-stall latency (Fig. 14)."""
        fixed = build_setting("S1", 16.0)
        flexible = fixed.with_flexible_arrays(True)
        group = build_task_workload(TaskType.VISION, group_size=12, seed=6,
                                    num_sub_accelerators=fixed.num_sub_accelerators)[0]
        fixed_table = JobAnalyzer(fixed).analyze(group)
        flexible_table = JobAnalyzer(flexible).analyze(group)
        assert flexible_table.latency_cycles.mean() <= fixed_table.latency_cycles.mean() + 1e-6

    def test_warm_start_transfer_between_groups(self):
        from repro.optimizers.warmstart import WarmStartEngine

        platform = build_setting("S2", 16.0)
        source = build_task_workload(TaskType.MIX, group_size=16, seed=7,
                                     num_sub_accelerators=4)[0]
        target = build_task_workload(TaskType.MIX, group_size=16, seed=8,
                                     num_sub_accelerators=4)[0]
        explorer = M3E(platform, sampling_budget=300)
        source_result = explorer.search(source, optimizer="magma", seed=0,
                                        optimizer_options={"population_size": 16})
        engine = WarmStartEngine()
        codec = explorer.build_evaluator(source).codec
        engine.record("mix", source_result.best_encoding, codec, source_result.best_fitness)

        target_evaluator = explorer.build_evaluator(target)
        warm = engine.suggest("mix", target_evaluator.codec, count=4, rng=0)
        warm_fitness = target_evaluator.evaluate(warm[0], count_sample=False)
        random_population = target_evaluator.codec.random_population(16, rng=0)
        random_mean = np.mean(
            target_evaluator.evaluate_population(random_population, count_samples=False)
        )
        # Transferred knowledge is at least competitive with the average
        # random starting point (Table V shows it is far better at scale).
        assert warm_fitness > 0.5 * random_mean
