"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.setting == "S2"
        assert args.optimizer == "magma"

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "S1" in output and "magma" in output and "resnet50" in output

    def test_search_command_small_run(self, capsys):
        exit_code = main([
            "search", "--setting", "S1", "--task", "vision",
            "--group-size", "12", "--budget", "60", "--optimizer", "stdga",
            "--show-schedule",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throughput=" in output
        assert "core0" in output

    def test_compare_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        exit_code = main([
            "compare", "--setting", "S1", "--task", "recommendation",
            "--optimizers", "herald-like", "magma", "--scale", "smoke",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "MAGMA" in output and "Herald-like" in output

    def test_experiment_command_outputs_json(self, capsys):
        exit_code = main(["experiment", "fig7"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "per_task" in payload and "per_model" in payload
