"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_scenarios


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.setting == "S2"
        assert args.optimizer == "magma"

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "S1" in output and "magma" in output and "resnet50" in output

    def test_search_command_small_run(self, capsys):
        exit_code = main([
            "search", "--setting", "S1", "--task", "vision",
            "--group-size", "12", "--budget", "60", "--optimizer", "stdga",
            "--show-schedule",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throughput=" in output
        assert "core0" in output

    def test_compare_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        exit_code = main([
            "compare", "--setting", "S1", "--task", "recommendation",
            "--optimizers", "herald-like", "magma", "--scale", "smoke",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "MAGMA" in output and "Herald-like" in output

    def test_experiment_command_outputs_json(self, capsys):
        exit_code = main(["experiment", "fig7"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "per_task" in payload and "per_model" in payload


class TestScenarioSmoke:
    @pytest.mark.parametrize("name", list_scenarios())
    def test_every_registered_scenario_runs_and_serializes(self, name, capsys):
        """Every scenario in the registry — paper figure/table or custom
        sweep — must run end to end at the tiny scale and print valid JSON."""
        exit_code = main(["experiment", name, "--scale", "tiny", "--seed", "0"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, dict) and payload


class TestCampaignCommand:
    def test_campaign_runs_and_resumes(self, capsys, tmp_path):
        out = str(tmp_path / "campaign.jsonl")
        exit_code = main([
            "campaign", "seed-replicates", "--scale", "tiny", "--out", out,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"cells_run": 9' in output
        with open(out, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 9
        record = json.loads(lines[0])
        assert record["scenario"] == "seed-replicates"
        assert record["result"]["throughput_gflops"] > 0

        # Resuming a completed campaign re-runs zero cells.
        exit_code = main([
            "campaign", "seed-replicates", "--scale", "tiny", "--out", out, "--resume",
        ])
        assert exit_code == 0
        resumed = capsys.readouterr().out
        assert '"cells_run": 0' in resumed and '"cells_skipped": 9' in resumed

    def test_campaign_with_grid_file(self, capsys, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "cli-grid",
            "settings": ["S1"],
            "tasks": ["vision"],
            "methods": ["magma", "stdga"],
        }))
        out = str(tmp_path / "campaign.jsonl")
        exit_code = main([
            "campaign", "--grid", str(grid), "--scale", "tiny", "--out", out,
        ])
        assert exit_code == 0
        assert '"cells_run": 2' in capsys.readouterr().out

    def test_campaign_without_scenarios_rejected(self, tmp_path):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["campaign", "--out", str(tmp_path / "x.jsonl")])
