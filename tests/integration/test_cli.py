"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import list_scenarios


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.setting == "S2"
        assert args.optimizer == "magma"

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "S1" in output and "magma" in output and "resnet50" in output

    def test_list_shows_backends_and_scales(self, capsys):
        """Service configs are discoverable: backends, scales, objectives."""
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "Evaluation backends:" in output
        assert "batch" in output and "parallel" in output and "scalar" in output
        assert "Scales:" in output
        assert "tiny" in output and "paper" in output
        assert "Objectives:" in output and "throughput" in output

    def test_search_command_small_run(self, capsys):
        exit_code = main([
            "search", "--setting", "S1", "--task", "vision",
            "--group-size", "12", "--budget", "60", "--optimizer", "stdga",
            "--show-schedule",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "throughput=" in output
        assert "core0" in output

    def test_compare_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        exit_code = main([
            "compare", "--setting", "S1", "--task", "recommendation",
            "--optimizers", "herald-like", "magma", "--scale", "smoke",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "MAGMA" in output and "Herald-like" in output

    def test_experiment_command_outputs_json(self, capsys):
        exit_code = main(["experiment", "fig7"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "per_task" in payload and "per_model" in payload


class TestScenarioSmoke:
    @pytest.mark.parametrize("name", list_scenarios())
    def test_every_registered_scenario_runs_and_serializes(self, name, capsys):
        """Every scenario in the registry — paper figure/table or custom
        sweep — must run end to end at the tiny scale and print valid JSON."""
        exit_code = main(["experiment", name, "--scale", "tiny", "--seed", "0"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, dict) and payload


class TestCampaignCommand:
    def test_campaign_runs_and_resumes(self, capsys, tmp_path):
        out = str(tmp_path / "campaign.jsonl")
        exit_code = main([
            "campaign", "seed-replicates", "--scale", "tiny", "--out", out,
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"cells_run": 9' in output
        with open(out, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 9
        record = json.loads(lines[0])
        assert record["scenario"] == "seed-replicates"
        assert record["result"]["throughput_gflops"] > 0

        # Resuming a completed campaign re-runs zero cells.
        exit_code = main([
            "campaign", "seed-replicates", "--scale", "tiny", "--out", out, "--resume",
        ])
        assert exit_code == 0
        resumed = capsys.readouterr().out
        assert '"cells_run": 0' in resumed and '"cells_skipped": 9' in resumed

    def test_campaign_with_grid_file(self, capsys, tmp_path):
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "cli-grid",
            "settings": ["S1"],
            "tasks": ["vision"],
            "methods": ["magma", "stdga"],
        }))
        out = str(tmp_path / "campaign.jsonl")
        exit_code = main([
            "campaign", "--grid", str(grid), "--scale", "tiny", "--out", out,
        ])
        assert exit_code == 0
        assert '"cells_run": 2' in capsys.readouterr().out

    def test_campaign_without_scenarios_rejected(self, tmp_path):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["campaign", "--out", str(tmp_path / "x.jsonl")])

    def test_campaign_seeds_flag_prints_uncertainty_and_agreement(self, capsys, tmp_path):
        """Acceptance: ``campaign --seeds 3`` emits per-cell mean ± std plus
        cross-seed winner agreement."""
        grid = tmp_path / "grid.json"
        grid.write_text(json.dumps({
            "name": "cli-seeds-grid",
            "settings": ["S1"],
            "tasks": ["vision"],
            "methods": ["magma", "stdga"],
        }))
        out = str(tmp_path / "campaign.jsonl")
        exit_code = main([
            "campaign", "--grid", str(grid), "--scale", "tiny", "--out", out,
            "--seeds", "3",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert '"cells_run": 6' in output  # 2 methods x 3 seeds
        # The uncertainty table: headers plus one row per replicate group.
        assert "mean" in output and "std" in output
        assert "throughput_gflops across 3 seed replicates" in output
        # Cross-seed agreement per (panel, objective) comparison.
        assert "agreement" in output and "winner=" in output
        # Resuming the finished multi-seed campaign re-runs nothing and
        # reports identical statistics from the same store.
        exit_code = main([
            "campaign", "--grid", str(grid), "--scale", "tiny", "--out", out,
            "--seeds", "3", "--resume",
        ])
        assert exit_code == 0
        resumed = capsys.readouterr().out
        assert '"cells_run": 0' in resumed and '"cells_skipped": 6' in resumed
        assert output.splitlines()[-7:] == resumed.splitlines()[-7:]


class TestServiceCommands:
    def test_search_with_warm_store_persists_solution(self, capsys, tmp_path):
        warm = str(tmp_path / "warm.jsonl")
        argv = [
            "search", "--setting", "S1", "--task", "vision",
            "--group-size", "12", "--budget", "60", "--optimizer", "stdga",
            "--warm-store", warm,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        from repro.service import WarmStartLibrary

        library = WarmStartLibrary(warm)
        assert library.known_tasks() == ["vision/throughput"]

    def test_submit_round_trip_against_served_service(self, capsys, tmp_path):
        """`repro-magma submit` talks to a live service over HTTP."""
        from repro.service import MappingService, serve_in_background

        service = MappingService(
            store=str(tmp_path / "solutions.jsonl"), scale="tiny", workers=1
        )
        server, _ = serve_in_background(service, host="127.0.0.1", port=0)
        host, port = server.server_address[:2]
        try:
            argv = [
                "submit", "--url", f"http://{host}:{port}",
                "--task", "vision", "--setting", "S1", "--wait", "--poll", "0.05",
            ]
            assert main(argv) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["state"] == "done"
            assert payload["result"]["best_fitness"] > 0

            # Submitting again hits the store: the reply carries the result
            # inline (no polling needed) and is marked cached.
            assert main(argv) == 0
            again = json.loads(capsys.readouterr().out)
            assert again["cached"] is True
            assert again["result"] == payload["result"]
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_submit_without_service_fails_loudly(self, tmp_path):
        from repro.exceptions import ServiceError

        with pytest.raises(ServiceError, match="cannot reach"):
            main(["submit", "--url", "http://127.0.0.1:9", "--timeout", "1"])


class TestStoreCommands:
    def _seed(self, url):
        from repro.utils.storage import open_store_backend

        with open_store_backend(url) as backend:
            for i in range(6):
                backend.append_record(
                    {"fingerprint": "fp-a" if i % 2 else "fp-b",
                     "result": {"best_fitness": float(i)}}
                )

    def test_store_info_prints_backend_summary(self, capsys, tmp_path):
        url = f"sqlite:{tmp_path / 'db.sqlite3'}"
        self._seed(url)
        assert main(["store", "info", url]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sqlite"
        assert payload["records"] == 6
        assert payload["fingerprints"] == 2

    def test_store_compact_applies_policy_and_reports(self, capsys, tmp_path):
        url = f"sqlite:{tmp_path / 'db.sqlite3'}"
        self._seed(url)
        assert main(["store", "compact", url]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kept"] == 2 and payload["dropped"] == 4
        assert payload["policy"]["keep_best_per_fingerprint"] is True
        from repro.utils.storage import open_store_backend

        with open_store_backend(url) as backend:
            assert len(backend) == 2

    def test_store_compact_max_records(self, capsys, tmp_path):
        url = f"jsonl:{tmp_path / 'db.jsonl'}"
        self._seed(url)
        argv = ["store", "compact", url, "--no-keep-best", "--max-records", "3"]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kept"] == 3 and payload["dropped"] == 3

    def test_store_serve_parser_defaults(self):
        args = build_parser().parse_args(["store", "serve"])
        assert args.listen == "127.0.0.1:9917"
        assert args.backing == "sqlite:store.sqlite3"

    def test_serve_parser_accepts_replica_id_and_store_url(self):
        args = build_parser().parse_args(
            ["serve", "--store", "tcp://127.0.0.1:9917", "--replica-id", "a"]
        )
        assert args.store == "tcp://127.0.0.1:9917"
        assert args.replica_id == "a"
