"""Tests for the model zoo and its registry."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.layers import LayerType
from repro.workloads.models import MODEL_REGISTRY, ModelFamily, get_model, list_models, models_for_family


class TestRegistry:
    def test_all_three_families_are_populated(self):
        for family in ModelFamily:
            assert len(models_for_family(family)) >= 3

    def test_list_models_filters_by_family(self):
        vision_models = list_models(ModelFamily.VISION)
        assert "resnet50" in vision_models
        assert "gpt2" not in vision_models

    def test_get_model_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_model("alexnet-v9000")

    def test_get_model_rejects_bad_batch(self):
        with pytest.raises(WorkloadError):
            MODEL_REGISTRY["resnet50"].build(0)

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_every_model_builds_nonempty_layer_list(self, name):
        layers = get_model(name, batch_size=1)
        assert len(layers) > 0
        assert all(layer.macs > 0 for layer in layers)

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_batch_size_scales_compute(self, name):
        single = sum(layer.macs for layer in get_model(name, batch_size=1))
        double = sum(layer.macs for layer in get_model(name, batch_size=2))
        assert double == pytest.approx(2 * single, rel=1e-9)


class TestArchitectureShapes:
    def test_resnet50_has_expected_depth(self):
        layers = get_model("resnet50")
        # 1 stem + 3 * (3 + 4 + 6 + 3) bottleneck convs + 1 FC = 50 weighted layers.
        assert len(layers) == 50

    def test_resnet50_total_flops_order_of_magnitude(self):
        total_flops = sum(layer.flops for layer in get_model("resnet50"))
        # ResNet-50 is ~7.7 GFLOPs at 224x224 with this layer accounting.
        assert 3e9 < total_flops < 2e10

    def test_mobilenet_uses_depthwise_layers(self):
        layers = get_model("mobilenet_v2")
        assert any(layer.layer_type is LayerType.DEPTHWISE_CONV2D for layer in layers)

    def test_vgg16_has_three_fc_layers(self):
        layers = get_model("vgg16")
        fc_layers = [l for l in layers if l.layer_type is LayerType.FULLY_CONNECTED]
        assert len(fc_layers) == 3

    def test_language_models_are_fc_and_attention_dominated(self):
        for name in ("gpt2", "bert_base", "transformer_xl"):
            layers = get_model(name)
            assert all(
                layer.layer_type in (LayerType.FULLY_CONNECTED, LayerType.ATTENTION)
                for layer in layers
            ), name

    def test_gpt2_layer_count_matches_block_structure(self):
        layers = get_model("gpt2")
        # 12 blocks x 7 layers + final projection.
        assert len(layers) == 12 * 7 + 1

    def test_recommendation_models_are_small_compute(self):
        vision_flops = sum(l.flops for l in get_model("resnet50"))
        for name in ("dlrm", "ncf", "wide_and_deep"):
            recom_flops = sum(l.flops for l in get_model(name))
            assert recom_flops < vision_flops / 100, name

    def test_model_layer_names_are_prefixed_with_model(self):
        for name in ("resnet50", "gpt2", "dlrm"):
            layers = get_model(name)
            assert all(layer.name for layer in layers), name
