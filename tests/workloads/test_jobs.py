"""Tests for jobs and job batches."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.jobs import Job, JobBatch
from repro.workloads.layers import fully_connected
from repro.workloads.models import get_model


def _make_jobs(count: int, start: int = 0):
    layer = fully_connected(1, 64, 64)
    return [Job(job_id=start + i, layer=layer, model_name="m", task_type="vision") for i in range(count)]


class TestJob:
    def test_flops_delegates_to_layer(self):
        layer = fully_connected(2, 128, 64)
        job = Job(job_id=0, layer=layer)
        assert job.flops == layer.flops
        assert job.macs == layer.macs

    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError):
            Job(job_id=-1, layer=fully_connected(1, 8, 8))

    def test_describe_contains_id_and_model(self):
        job = Job(job_id=7, layer=fully_connected(1, 8, 8), model_name="resnet50")
        assert "job7" in job.describe()
        assert "resnet50" in job.describe()


class TestJobBatch:
    def test_len_and_iteration(self):
        batch = JobBatch(_make_jobs(5))
        assert len(batch) == 5
        assert [job.job_id for job in batch] == [0, 1, 2, 3, 4]

    def test_duplicate_ids_rejected(self):
        jobs = _make_jobs(3) + _make_jobs(1)
        with pytest.raises(WorkloadError):
            JobBatch(jobs)

    def test_total_flops_is_sum(self):
        batch = JobBatch(_make_jobs(4))
        assert batch.total_flops == sum(job.flops for job in batch)

    def test_from_layers_assigns_sequential_ids(self):
        layers = get_model("ncf")
        batch = JobBatch.from_layers(layers, model_name="ncf", task_type="recommendation")
        assert [job.job_id for job in batch] == list(range(len(layers)))
        assert all(job.model_name == "ncf" for job in batch)

    def test_concatenate_reassigns_ids(self):
        a = JobBatch(_make_jobs(3))
        b = JobBatch(_make_jobs(3))
        combined = a.concatenate(b)
        assert len(combined) == 6
        assert [job.job_id for job in combined] == list(range(6))

    def test_model_and_task_listings(self):
        layers = get_model("ncf")
        a = JobBatch.from_layers(layers, model_name="ncf", task_type="recommendation")
        b = JobBatch.from_layers(get_model("gpt2")[:5], model_name="gpt2", task_type="language")
        combined = a.concatenate(b)
        assert combined.model_names == ["ncf", "gpt2"]
        assert combined.task_types == ["recommendation", "language"]
