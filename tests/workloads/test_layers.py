"""Unit tests for the layer IR."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.layers import (
    LayerType,
    attention,
    conv2d,
    depthwise_conv2d,
    embedding_lookup,
    fully_connected,
    pointwise_conv2d,
)


class TestLayerConstruction:
    def test_conv2d_dimensions(self):
        layer = conv2d(n=2, k=64, c=32, y=28, x=28, r=3, s=3, name="conv")
        assert layer.layer_type is LayerType.CONV2D
        assert layer.k == 64 and layer.c == 32
        assert layer.name == "conv"

    def test_depthwise_forces_matching_channels(self):
        layer = depthwise_conv2d(n=1, c=96, y=14, x=14, r=3, s=3)
        assert layer.k == layer.c == 96

    def test_pointwise_kernel_is_one_by_one(self):
        layer = pointwise_conv2d(n=1, k=128, c=64, y=14, x=14)
        assert layer.r == 1 and layer.s == 1

    def test_fully_connected_has_unit_spatial_dims(self):
        layer = fully_connected(n=4, out_features=1000, in_features=2048)
        assert layer.y == layer.x == layer.r == layer.s == 1

    def test_attention_scales_with_sequence_length(self):
        short = attention(n=1, sequence_length=32, hidden_dim=256)
        long = attention(n=1, sequence_length=64, hidden_dim=256)
        # Quadratic growth in sequence length (both N and K scale with it).
        assert long.macs == 4 * short.macs

    def test_embedding_is_data_movement_dominated(self):
        layer = embedding_lookup(n=1, num_lookups=16, embedding_dim=64)
        assert layer.arithmetic_intensity < 1.0

    @pytest.mark.parametrize("bad_value", [0, -1])
    def test_rejects_non_positive_dimensions(self, bad_value):
        with pytest.raises(WorkloadError):
            conv2d(n=bad_value, k=8, c=8, y=4, x=4, r=3, s=3)

    def test_rejects_non_integer_dimensions(self):
        with pytest.raises(WorkloadError):
            fully_connected(n=1, out_features=10.5, in_features=8)  # type: ignore[arg-type]


class TestDerivedQuantities:
    def test_conv_mac_count(self):
        layer = conv2d(n=1, k=8, c=4, y=5, x=5, r=3, s=3)
        assert layer.macs == 8 * 4 * 5 * 5 * 3 * 3

    def test_depthwise_macs_exclude_channel_reduction(self):
        dw = depthwise_conv2d(n=1, c=16, y=8, x=8, r=3, s=3)
        full = conv2d(n=1, k=16, c=16, y=8, x=8, r=3, s=3)
        assert dw.macs * 16 == full.macs

    def test_flops_are_twice_macs(self):
        layer = fully_connected(n=2, out_features=64, in_features=32)
        assert layer.flops == 2 * layer.macs

    def test_fc_weight_elements(self):
        layer = fully_connected(n=1, out_features=100, in_features=50)
        assert layer.weight_elements == 100 * 50

    def test_input_elements_account_for_halo(self):
        layer = conv2d(n=1, k=1, c=1, y=4, x=4, r=3, s=3, stride=1)
        # Input spatial extent is (4-1)*1 + 3 = 6 in each dimension.
        assert layer.input_elements == 6 * 6

    def test_output_elements(self):
        layer = conv2d(n=2, k=3, c=1, y=4, x=5, r=1, s=1)
        assert layer.output_elements == 2 * 3 * 4 * 5

    def test_arithmetic_intensity_increases_with_channels(self):
        small = conv2d(n=1, k=16, c=16, y=14, x=14, r=3, s=3)
        large = conv2d(n=1, k=256, c=256, y=14, x=14, r=3, s=3)
        assert large.arithmetic_intensity > small.arithmetic_intensity


class TestTransforms:
    def test_with_batch_changes_only_batch(self):
        layer = conv2d(n=1, k=8, c=8, y=7, x=7, r=3, s=3)
        batched = layer.with_batch(4)
        assert batched.n == 4
        assert batched.k == layer.k
        assert batched.macs == 4 * layer.macs

    def test_scaled_spatial_never_reaches_zero(self):
        layer = conv2d(n=1, k=8, c=8, y=2, x=2, r=1, s=1)
        shrunk = layer.scaled_spatial(8)
        assert shrunk.y == 1 and shrunk.x == 1

    def test_scaled_spatial_rejects_bad_factor(self):
        layer = conv2d(n=1, k=8, c=8, y=2, x=2, r=1, s=1)
        with pytest.raises(WorkloadError):
            layer.scaled_spatial(0)

    def test_describe_mentions_name_and_dims(self):
        layer = conv2d(n=1, k=8, c=8, y=2, x=2, r=1, s=1, name="stage1.conv")
        text = layer.describe()
        assert "stage1.conv" in text and "K8" in text
