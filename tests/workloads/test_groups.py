"""Tests for dependency-free group partitioning."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.groups import JobGroup, interleave_batches, partition_into_groups
from repro.workloads.jobs import Job, JobBatch
from repro.workloads.layers import fully_connected


def _batch(count: int, model: str = "m", task: str = "vision") -> JobBatch:
    layer = fully_connected(1, 32, 32)
    return JobBatch(Job(job_id=i, layer=layer, model_name=model, task_type=task) for i in range(count))


class TestJobGroup:
    def test_empty_group_rejected(self):
        with pytest.raises(WorkloadError):
            JobGroup(group_id=0, jobs=())

    def test_size_and_total_flops(self):
        batch = _batch(6)
        group = JobGroup(group_id=0, jobs=tuple(batch.jobs))
        assert group.size == 6
        assert group.total_flops == batch.total_flops

    def test_indexing_and_iteration(self):
        group = JobGroup(group_id=1, jobs=tuple(_batch(4).jobs))
        assert group[0].job_id == 0
        assert [j.job_id for j in group] == [0, 1, 2, 3]

    def test_describe_mentions_size(self):
        group = JobGroup(group_id=2, jobs=tuple(_batch(3).jobs))
        assert "size=3" in group.describe()


class TestPartitioning:
    def test_even_partition(self):
        groups = partition_into_groups(_batch(20), group_size=5)
        assert len(groups) == 4
        assert all(g.size == 5 for g in groups)

    def test_every_job_appears_exactly_once(self):
        batch = _batch(23)
        groups = partition_into_groups(batch, group_size=5)
        seen = [job.job_id for group in groups for job in group]
        assert sorted(seen) == list(range(23))

    def test_group_size_must_cover_cores(self):
        with pytest.raises(WorkloadError):
            partition_into_groups(_batch(20), group_size=2, num_sub_accelerators=4)

    def test_drop_incomplete_trailing_group(self):
        groups = partition_into_groups(_batch(22), group_size=5, drop_incomplete=True)
        assert len(groups) == 4
        assert sum(g.size for g in groups) == 20

    def test_tiny_trailing_fragment_merges_into_previous_group(self):
        groups = partition_into_groups(_batch(21), group_size=10, num_sub_accelerators=4)
        assert len(groups) == 2
        assert groups[-1].size == 11

    def test_shuffle_is_deterministic_per_seed(self):
        batch = _batch(30)
        a = partition_into_groups(batch, group_size=10, shuffle=True, rng=42)
        b = partition_into_groups(batch, group_size=10, shuffle=True, rng=42)
        assert [j.job_id for j in a[0]] == [j.job_id for j in b[0]]

    def test_empty_batch_returns_no_groups(self):
        assert partition_into_groups(JobBatch([]), group_size=4) == []

    def test_invalid_group_size(self):
        with pytest.raises(WorkloadError):
            partition_into_groups(_batch(4), group_size=0)


class TestInterleaving:
    def test_interleave_alternates_models(self):
        a = _batch(3, model="a")
        b = _batch(3, model="b")
        combined = interleave_batches([a, b])
        assert [job.model_name for job in combined][:4] == ["a", "b", "a", "b"]

    def test_interleave_handles_uneven_lengths(self):
        a = _batch(4, model="a")
        b = _batch(2, model="b")
        combined = interleave_batches([a, b])
        assert len(combined) == 6
        assert [job.job_id for job in combined] == list(range(6))

    def test_interleave_empty_input(self):
        assert len(interleave_batches([])) == 0
