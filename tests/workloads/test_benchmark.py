"""Tests for the benchmark workload generator."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.benchmark import BenchmarkBuilder, TaskType, WorkloadSpec, build_task_workload
from repro.workloads.models import ModelFamily


class TestTaskType:
    def test_mix_spans_all_families(self):
        assert set(TaskType.MIX.families) == {
            ModelFamily.VISION,
            ModelFamily.LANGUAGE,
            ModelFamily.RECOMMENDATION,
        }

    @pytest.mark.parametrize(
        "task,family",
        [
            (TaskType.VISION, ModelFamily.VISION),
            (TaskType.LANGUAGE, ModelFamily.LANGUAGE),
            (TaskType.RECOMMENDATION, ModelFamily.RECOMMENDATION),
        ],
    )
    def test_single_family_tasks(self, task, family):
        assert task.families == [family]


class TestWorkloadSpec:
    def test_rejects_non_positive_sizes(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(task=TaskType.VISION, num_jobs=0)
        with pytest.raises(WorkloadError):
            WorkloadSpec(task=TaskType.VISION, group_size=0)

    def test_unknown_models_rejected_at_build(self):
        spec = WorkloadSpec(task=TaskType.VISION, num_jobs=10, models=["not-a-model"])
        with pytest.raises(WorkloadError):
            BenchmarkBuilder(spec)


class TestBenchmarkBuilder:
    def test_batch_has_requested_number_of_jobs(self):
        spec = WorkloadSpec(task=TaskType.MIX, num_jobs=37, group_size=10, seed=3)
        batch = BenchmarkBuilder(spec).build_batch()
        assert len(batch) == 37

    def test_same_seed_same_workload(self):
        spec = WorkloadSpec(task=TaskType.MIX, num_jobs=25, seed=7)
        a = BenchmarkBuilder(spec).build_batch()
        b = BenchmarkBuilder(spec).build_batch()
        assert [j.layer for j in a] == [j.layer for j in b]

    def test_different_seed_changes_workload(self):
        a = BenchmarkBuilder(WorkloadSpec(task=TaskType.MIX, num_jobs=40, seed=1)).build_batch()
        b = BenchmarkBuilder(WorkloadSpec(task=TaskType.MIX, num_jobs=40, seed=2)).build_batch()
        assert [j.layer for j in a] != [j.layer for j in b]

    def test_task_restricts_model_families(self):
        batch = BenchmarkBuilder(WorkloadSpec(task=TaskType.VISION, num_jobs=50, seed=0)).build_batch()
        assert set(batch.task_types) == {"vision"}

    def test_mix_task_contains_multiple_families(self):
        batch = BenchmarkBuilder(WorkloadSpec(task=TaskType.MIX, num_jobs=200, seed=0)).build_batch()
        assert len(set(batch.task_types)) == 3

    def test_explicit_model_subset(self):
        spec = WorkloadSpec(task=TaskType.VISION, num_jobs=30, seed=0, models=["resnet50"])
        batch = BenchmarkBuilder(spec).build_batch()
        assert set(batch.model_names) == {"resnet50"}

    def test_groups_respect_group_size(self):
        spec = WorkloadSpec(task=TaskType.MIX, num_jobs=60, group_size=20, seed=0)
        groups = BenchmarkBuilder(spec).build_groups(num_sub_accelerators=4)
        assert [g.size for g in groups] == [20, 20, 20]


class TestBuildTaskWorkload:
    def test_returns_requested_number_of_groups(self):
        groups = build_task_workload(TaskType.MIX, group_size=15, num_groups=2, seed=0)
        assert len(groups) == 2
        assert all(g.size == 15 for g in groups)

    def test_group_size_respects_core_count_validation(self):
        with pytest.raises(WorkloadError):
            build_task_workload(TaskType.MIX, group_size=2, num_groups=1, num_sub_accelerators=8)

    def test_deterministic_across_calls(self):
        a = build_task_workload(TaskType.LANGUAGE, group_size=10, seed=5)[0]
        b = build_task_workload(TaskType.LANGUAGE, group_size=10, seed=5)[0]
        assert [j.layer for j in a] == [j.layer for j in b]
