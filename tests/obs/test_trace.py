"""Tracer mechanics: ring bounding, JSONL sink safety, parent ids, inertness."""

import json
import threading

import pytest

from repro.obs import configure_tracing, get_tracer, read_trace
from repro.obs.trace import Tracer


class TestRingBounding:
    def test_ring_keeps_only_the_newest_records(self):
        tracer = Tracer(ring_capacity=5, enabled=True)
        for index in range(20):
            tracer.event("tick", index=index)
        records = tracer.records(kind="event", name="tick")
        assert len(records) == 5
        assert [r["attrs"]["index"] for r in records] == [15, 16, 17, 18, 19]

    def test_rebounding_keeps_the_newest_records(self):
        tracer = Tracer(ring_capacity=10, enabled=True)
        for index in range(10):
            tracer.event("tick", index=index)
        tracer.configure(ring_capacity=3)
        assert [r["attrs"]["index"] for r in tracer.records()] == [7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(ring_capacity=0)
        with pytest.raises(ValueError):
            Tracer().configure(ring_capacity=-1)


class TestSpansAndParents:
    def test_nested_spans_record_explicit_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("mark")
        records = {r["name"]: r for r in tracer.records()}
        outer, inner, mark = records["outer"], records["inner"], records["mark"]
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert mark["parent"] == inner["id"]
        # Children close (and therefore emit) before their parents.
        names = [r["name"] for r in tracer.records()]
        assert names.index("inner") < names.index("outer")

    def test_span_ids_are_a_deterministic_counter(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [r["id"] for r in tracer.records()]
        assert ids == sorted(ids)
        assert all(isinstance(i, int) for i in ids)

    def test_sibling_threads_get_independent_span_stacks(self):
        tracer = Tracer(enabled=True)
        seen = {}

        def worker():
            with tracer.span("child"):
                pass

        with tracer.span("main-span"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        child = tracer.records(kind="span", name="child")[0]
        assert child["parent"] is None, "another thread's open span is not my parent"
        assert seen == {}


class TestDisabledInertness:
    def test_disabled_tracer_records_no_spans_or_events(self):
        tracer = Tracer(enabled=False)
        with tracer.span("quiet"):
            tracer.event("quiet-event")
        assert tracer.records() == []

    def test_disabled_span_is_the_reusable_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_warnings_are_recorded_even_when_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.warning("pool-died", host="h:1")
        records = tracer.records(kind="event", level="warning")
        assert len(records) == 1
        assert records[0]["name"] == "pool-died"
        assert records[0]["attrs"] == {"host": "h:1"}


class TestJsonlSink:
    def test_sink_appends_one_json_line_per_record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, sink_path=path)
        with tracer.span("outer", label="x"):
            tracer.event("mark")
        tracer.close()
        lines = open(path, encoding="utf-8").read().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert {r["kind"] for r in parsed} == {"event", "span"}

    def test_read_trace_tolerates_a_torn_trailing_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, sink_path=path)
        for index in range(3):
            tracer.event("tick", index=index)
        tracer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "event", "name": "torn')  # crash mid-write
        records = list(read_trace(path))
        assert [r["attrs"]["index"] for r in records] == [0, 1, 2]

    def test_read_trace_of_a_missing_file_yields_nothing(self, tmp_path):
        assert list(read_trace(str(tmp_path / "absent.jsonl"))) == []

    def test_configure_none_removes_the_sink(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, sink_path=path)
        tracer.event("before")
        tracer.configure(sink_path=None)
        tracer.event("after")
        names = [r["name"] for r in read_trace(path)]
        assert names == ["before"]


class TestGlobalTracer:
    def test_configure_tracing_flips_the_process_tracer(self):
        tracer = configure_tracing(enabled=True)
        assert tracer is get_tracer()
        assert tracer.enabled
        tracer.event("global-mark")
        assert tracer.records(name="global-mark")
        configure_tracing(enabled=False)
        assert not get_tracer().enabled
