"""Flight recorder and the ``trace summarize`` analyzer."""

import pytest

from repro.obs import FlightRecorder, render_trace_summary, summarize_trace
from repro.obs.flight import null_phase
from repro.obs.trace import Tracer


class TestFlightRecorder:
    def test_phases_accumulate_wall_cpu_and_count(self):
        recorder = FlightRecorder()
        with recorder.phase("optimize"):
            pass
        with recorder.phase("optimize"):
            pass
        block = recorder.to_dict()
        phase = block["phases"]["optimize"]
        assert phase["count"] == 2
        assert phase["wall_s"] >= 0.0
        assert phase["cpu_s"] >= 0.0

    def test_cache_hit_rate_from_counters(self):
        recorder = FlightRecorder()
        recorder.count("memo_hits", 3)
        recorder.count("memo_misses", 1)
        assert recorder.to_dict()["cache_hit_rate"] == pytest.approx(0.75)

    def test_no_cache_activity_means_no_rate_key(self):
        assert "cache_hit_rate" not in FlightRecorder().to_dict()

    def test_null_phase_is_reusable_and_inert(self):
        phase = null_phase()
        assert phase is null_phase()
        with phase:
            pass


class TestSummarizeTrace:
    def _traced_records(self):
        tracer = Tracer(enabled=True)
        with tracer.span("m3e.search"):
            with tracer.span("evaluator.generation"):
                pass
            with tracer.span("evaluator.generation"):
                pass
            tracer.warning("parallel.pool-abandoned", timeout_s=1)
        return tracer.records()

    def test_aggregates_per_span_family(self):
        summary = summarize_trace(self._traced_records())
        assert summary["records"] == 4
        search = summary["spans"]["m3e.search"]
        generation = summary["spans"]["evaluator.generation"]
        assert search["count"] == 1
        assert generation["count"] == 2
        # Parentless spans define the share denominator; nested families are
        # scored against it (their fraction of the traced run).
        assert search["share"] == pytest.approx(1.0)
        assert 0.0 < generation["share"] <= 1.0
        assert generation["share"] == pytest.approx(
            generation["total_s"] / search["total_s"]
        )
        assert generation["total_s"] <= search["total_s"]
        assert summary["events"]["parallel.pool-abandoned"]["level"] == "warning"

    def test_reads_a_trace_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(enabled=True, sink_path=path)
        with tracer.span("m3e.search"):
            pass
        tracer.close()
        summary = summarize_trace(path)
        assert summary["spans"]["m3e.search"]["count"] == 1
        assert summary["wall_s"] >= 0.0

    def test_render_is_a_table_sorted_by_total_time(self):
        text = render_trace_summary(summarize_trace(self._traced_records()))
        lines = text.splitlines()
        assert lines[0].startswith("trace: 4 records")
        body = [line for line in lines if line.startswith(("m3e", "evaluator"))]
        assert body[0].startswith("m3e.search")
        assert "parallel.pool-abandoned (warning): 1" in text
