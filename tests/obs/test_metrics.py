"""Metrics registry: types, labels, and the Prometheus text exposition."""

import pytest

from repro.obs import MetricsRegistry, render_prometheus
from repro.obs.metrics import Counter, Gauge, Histogram


class TestCounter:
    def test_counts_up_and_rejects_negatives(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12.0


class TestHistogram:
    def test_buckets_render_cumulatively(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["cumulative"] == [1, 2, 3]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(2.55)

    def test_observation_above_every_bound_still_counts(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(100.0)
        snap = histogram.snapshot()
        assert snap["cumulative"] == [0]
        assert snap["count"] == 1


class TestRegistry:
    def test_get_or_create_returns_the_same_series(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help", labels={"k": "a"})
        again = registry.counter("repro_test_total", labels={"k": "a"})
        other = registry.counter("repro_test_total", labels={"k": "b"})
        assert first is again
        assert first is not other

    def test_one_name_one_type(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_invalid_names_and_labels_fail_loudly(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", labels={"bad-label": "x"})

    def test_value_of_reads_series_back(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labels={"k": "a"}).inc(7)
        assert registry.value_of("repro_test_total", labels={"k": "a"}) == 7.0
        assert registry.value_of("repro_test_total", labels={"k": "zz"}) == 0.0
        assert registry.value_of("repro_absent_total") == 0.0


class TestPrometheusRendering:
    def test_scrape_format(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_evals_total", "Rows evaluated.", labels={"backend": "batch"}
        ).inc(12)
        registry.gauge("repro_queue_depth", "Queued jobs.").set(3)
        text = registry.render()
        lines = text.splitlines()
        assert "# HELP repro_evals_total Rows evaluated." in lines
        assert "# TYPE repro_evals_total counter" in lines
        assert 'repro_evals_total{backend="batch"} 12' in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "repro_queue_depth 3" in lines
        assert text.endswith("\n")

    def test_histogram_exposition_has_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_wait_seconds", "Waits.", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        lines = registry.render().splitlines()
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_wait_seconds_bucket{le="1"} 1' in lines
        assert 'repro_wait_seconds_bucket{le="+Inf"} 2' in lines
        assert "repro_wait_seconds_sum 5.05" in lines
        assert "repro_wait_seconds_count 2" in lines

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", labels={"path": 'a"b\\c\nd'}).inc()
        rendered = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in rendered

    def test_render_prometheus_defaults_to_the_process_registry(self):
        import repro.core.rpc  # noqa: F401 — registers the wire-volume counters

        assert "repro_rpc_bytes_sent_total" in render_prometheus()
