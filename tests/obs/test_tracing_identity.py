"""The inertness contract: tracing on vs off is bit-identical — everywhere.

docs/OBSERVABILITY.md promises that telemetry observes and never steers: the
same seed must produce a byte-identical durable record whether or not the
search (or service) was traced, through every evaluation backend.  These
property tests are the contract's enforcement — they run the same search
twice, once untraced and once traced into a JSONL sink, and compare the
``to_dict()`` forms (which exclude the diagnostic ``telemetry`` block by
design).
"""

import pytest

from repro.accelerator import build_setting
from repro.core.framework import M3E
from repro.obs import configure_tracing, get_tracer
from repro.service import MappingService
from repro.utils.serialization import SearchResultSummary, jsonable
from repro.workloads import TaskType, build_task_workload

BACKENDS = ("scalar", "batch", "parallel", "rpc")

SEED = 1234


def _problem(group_size: int = 10):
    platform = build_setting("S1", 16.0)
    group = build_task_workload(
        TaskType.MIX,
        group_size=group_size,
        seed=0,
        num_sub_accelerators=platform.num_sub_accelerators,
    )[0]
    return platform, group


def _search(backend: str, seed):
    platform, group = _problem()
    kwargs = {}
    if backend == "parallel":
        kwargs["eval_workers"] = 2
    explorer = M3E(platform, sampling_budget=120, eval_backend=backend, **kwargs)
    return explorer.search(
        group,
        optimizer="magma",
        seed=seed,
        optimizer_options={"population_size": 8},
    )


class TestTracingIsInert:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_traced_and_untraced_results_are_bit_identical(self, backend, tmp_path):
        configure_tracing(enabled=False, sink_path=None)
        untraced = SearchResultSummary.from_result(_search(backend, SEED))
        configure_tracing(enabled=True, sink_path=str(tmp_path / "trace.jsonl"))
        traced = SearchResultSummary.from_result(_search(backend, SEED))
        assert traced.to_dict() == untraced.to_dict()

    def test_traced_search_recorded_spans_and_telemetry(self, tmp_path):
        configure_tracing(enabled=True, sink_path=str(tmp_path / "trace.jsonl"))
        result = _search("batch", SEED)
        spans = get_tracer().records(kind="span", name="m3e.search")
        assert spans, "an enabled tracer must record the search span"
        assert result.telemetry is not None
        assert result.telemetry["backend"] == "batch"
        assert "optimize" in result.telemetry["phases"]
        assert result.telemetry["counters"]["generations"] >= 1

    def test_untraced_search_carries_no_telemetry(self):
        result = _search("batch", SEED)
        assert result.telemetry is None

    def test_telemetry_never_reaches_the_durable_record(self, tmp_path):
        configure_tracing(enabled=True, sink_path=str(tmp_path / "trace.jsonl"))
        summary = SearchResultSummary.from_result(_search("batch", SEED))
        assert summary.telemetry is not None
        assert "telemetry" not in summary.to_dict()
        assert "telemetry" not in jsonable(summary)
        included = summary.to_dict(include_telemetry=True)
        assert included["telemetry"]["backend"] == "batch"

    def test_service_submit_is_bit_identical_traced_vs_untraced(self, tmp_path):
        request = {"setting": "S1", "task": "mix", "group_size": 10, "budget": 120, "seed": 7}

        def run(store_name: str):
            with MappingService(store=str(tmp_path / store_name), scale="smoke") as service:
                job = service.submit(dict(request))
                return service.result(job.job_id, timeout=120).to_dict()

        configure_tracing(enabled=False, sink_path=None)
        untraced = run("untraced.jsonl")
        configure_tracing(enabled=True, sink_path=str(tmp_path / "trace.jsonl"))
        traced = run("traced.jsonl")
        assert traced == untraced
