"""Tests for the HB / LB dataflow descriptions."""

import pytest

from repro.costmodel.dataflow import DataflowStyle, HB_DATAFLOW, LB_DATAFLOW, get_dataflow
from repro.exceptions import CostModelError
from repro.workloads.layers import conv2d, depthwise_conv2d, fully_connected


class TestLookup:
    def test_get_dataflow_by_string(self):
        assert get_dataflow("hb").style is DataflowStyle.HB
        assert get_dataflow("LB").style is DataflowStyle.LB

    def test_get_dataflow_by_enum(self):
        assert get_dataflow(DataflowStyle.HB) is HB_DATAFLOW

    def test_unknown_style_rejected(self):
        with pytest.raises(CostModelError):
            get_dataflow("weight-stationary-deluxe")


class TestSpatialMapping:
    def test_hb_maps_channels(self):
        layer = conv2d(1, 128, 64, 14, 14, 3, 3)
        assert HB_DATAFLOW.spatial_dims(layer) == (128, 64)

    def test_lb_maps_rows_and_channels(self):
        layer = conv2d(1, 128, 64, 14, 14, 3, 3)
        assert LB_DATAFLOW.spatial_dims(layer) == (14, 64)

    def test_depthwise_uses_kernel_window(self):
        layer = depthwise_conv2d(1, 96, 28, 28, 3, 3)
        assert HB_DATAFLOW.spatial_dims(layer) == (96, 9)
        assert LB_DATAFLOW.spatial_dims(layer) == (28, 9)

    def test_fc_occupies_thin_slice_on_lb(self):
        layer = fully_connected(64, 512, 512)
        mapped_hb = HB_DATAFLOW.mapped_pes(layer, 32, 64)
        mapped_lb = LB_DATAFLOW.mapped_pes(layer, 32, 64)
        assert mapped_hb == 32 * 64
        assert mapped_lb == 1 * 64

    def test_mapped_pes_never_exceeds_array(self):
        layer = conv2d(1, 1024, 1024, 56, 56, 3, 3)
        assert HB_DATAFLOW.mapped_pes(layer, 16, 16) <= 16 * 16

    def test_mapped_pes_rejects_bad_array(self):
        layer = fully_connected(1, 8, 8)
        with pytest.raises(CostModelError):
            HB_DATAFLOW.mapped_pes(layer, 0, 16)

    def test_temporal_folds_cover_layer(self):
        layer = conv2d(1, 100, 70, 14, 14, 3, 3)
        assert HB_DATAFLOW.temporal_folds(layer, 32, 64) == 4 * 2


class TestRefetchBehaviour:
    def test_lb_reads_inputs_once(self):
        layer = fully_connected(256, 1024, 1024)
        assert LB_DATAFLOW.input_refetch_factor(layer, 32, 64, sg_bytes=1024, bytes_per_element=1) == 1.0

    def test_hb_convolution_reads_inputs_once(self):
        layer = conv2d(1, 512, 256, 14, 14, 3, 3)
        assert HB_DATAFLOW.input_refetch_factor(layer, 32, 64, sg_bytes=2048, bytes_per_element=1) == 1.0

    def test_hb_fc_refetches_when_inputs_do_not_fit(self):
        layer = fully_connected(256, 1024, 1024)
        factor = HB_DATAFLOW.input_refetch_factor(layer, 32, 64, sg_bytes=64 * 1024, bytes_per_element=1)
        assert factor > 1.0

    def test_hb_fc_no_refetch_when_inputs_fit(self):
        layer = fully_connected(4, 1024, 64)
        factor = HB_DATAFLOW.input_refetch_factor(layer, 32, 64, sg_bytes=64 * 1024, bytes_per_element=1)
        assert factor == 1.0

    def test_refetch_factor_is_bounded(self):
        layer = fully_connected(4096, 8192, 8192)
        factor = HB_DATAFLOW.input_refetch_factor(layer, 8, 8, sg_bytes=1024, bytes_per_element=1)
        assert factor <= HB_DATAFLOW._MAX_INPUT_REFETCH

    def test_hb_weight_read_once(self):
        layer = conv2d(1, 512, 512, 7, 7, 3, 3)
        assert HB_DATAFLOW.weight_refetch_factor(layer, 32, 64, sg_bytes=1024, bytes_per_element=1) == 1.0

    def test_lb_weight_refetch_when_large(self):
        layer = conv2d(1, 512, 512, 112, 112, 3, 3)
        factor = LB_DATAFLOW.weight_refetch_factor(layer, 32, 64, sg_bytes=64 * 1024, bytes_per_element=1)
        assert factor > 1.0

    def test_output_refetch_only_for_gemm_on_hb(self):
        conv = conv2d(1, 512, 512, 14, 14, 3, 3)
        gemm = fully_connected(512, 4096, 4096)
        assert HB_DATAFLOW.output_refetch_factor(conv, 32, 64, 1024, 1) == 1.0
        assert HB_DATAFLOW.output_refetch_factor(gemm, 32, 64, 1024, 1) > 1.0
        assert LB_DATAFLOW.output_refetch_factor(gemm, 32, 64, 1024, 1) == 1.0


class TestComputeEfficiency:
    def test_hb_efficiency_is_unity(self):
        assert HB_DATAFLOW.compute_efficiency(fully_connected(1, 64, 64)) == 1.0

    def test_lb_penalises_fc_more_than_conv(self):
        conv = conv2d(1, 64, 64, 14, 14, 3, 3)
        fc = fully_connected(1, 64, 64)
        assert LB_DATAFLOW.compute_efficiency(conv) > LB_DATAFLOW.compute_efficiency(fc)
