"""Tests for the energy model."""

import pytest

from repro.costmodel.energy import EnergyBreakdown, EnergyModel


class TestEnergyModel:
    def test_total_is_sum_of_components(self):
        breakdown = EnergyModel().estimate(macs=1e6, dram_bytes=1e4, sg_bytes_accessed=1e5, sl_bytes_accessed=1e6)
        assert breakdown.total_joules == pytest.approx(
            breakdown.mac_joules + breakdown.sl_joules + breakdown.sg_joules + breakdown.dram_joules
        )

    def test_dram_byte_costs_more_than_mac(self):
        model = EnergyModel()
        dram_only = model.estimate(macs=0, dram_bytes=1, sg_bytes_accessed=0, sl_bytes_accessed=0)
        mac_only = model.estimate(macs=1, dram_bytes=0, sg_bytes_accessed=0, sl_bytes_accessed=0)
        assert dram_only.total_joules > 50 * mac_only.total_joules

    def test_memory_hierarchy_ordering(self):
        model = EnergyModel()
        assert model.dram_access_pj_per_byte > model.sg_access_pj_per_byte > model.sl_access_pj_per_byte

    def test_zero_activity_zero_energy(self):
        breakdown = EnergyModel().estimate(macs=0, dram_bytes=0, sg_bytes_accessed=0, sl_bytes_accessed=0)
        assert breakdown.total_joules == 0.0

    def test_scaled_breakdown(self):
        breakdown = EnergyBreakdown(mac_joules=1.0, sl_joules=2.0, sg_joules=3.0, dram_joules=4.0)
        doubled = breakdown.scaled(2.0)
        assert doubled.total_joules == pytest.approx(20.0)

    def test_custom_costs_respected(self):
        model = EnergyModel(mac_pj=10.0)
        breakdown = model.estimate(macs=1e3, dram_bytes=0, sg_bytes_accessed=0, sl_bytes_accessed=0)
        assert breakdown.mac_joules == pytest.approx(1e3 * 10.0 * 1e-12)
