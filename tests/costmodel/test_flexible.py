"""Tests for the flexible (configurable-shape) PE-array cost model."""

import pytest

from repro.costmodel import AnalyticalCostModel, FlexibleArrayCostModel
from repro.costmodel.flexible import best_array_shape, _factor_pairs
from repro.exceptions import CostModelError
from repro.workloads.layers import conv2d, fully_connected


class TestFactorPairs:
    def test_factor_pairs_cover_all_divisors(self):
        pairs = _factor_pairs(12)
        assert set(pairs) == {(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)}

    def test_factor_pairs_of_prime(self):
        assert set(_factor_pairs(7)) == {(1, 7), (7, 1)}


class TestBestArrayShape:
    def test_shape_preserves_pe_budget(self):
        layer = conv2d(1, 96, 48, 14, 14, 3, 3)
        (rows, cols), _ = best_array_shape(layer, total_pes=2048, dataflow="HB", sg_bytes=146 * 1024)
        assert rows * cols == 2048

    def test_flexible_no_worse_than_fixed(self):
        layer = fully_connected(8, 96, 48)
        fixed = AnalyticalCostModel(32, 64, "HB", sg_bytes=146 * 1024).evaluate(layer)
        _, flexible = best_array_shape(layer, total_pes=2048, dataflow="HB", sg_bytes=146 * 1024)
        assert flexible.no_stall_latency_cycles <= fixed.no_stall_latency_cycles + 1e-9

    def test_rejects_bad_budget(self):
        with pytest.raises(CostModelError):
            best_array_shape(fully_connected(1, 8, 8), total_pes=0, dataflow="HB")

    def test_shape_adapts_to_layer_aspect(self):
        tall = fully_connected(1, 2048, 8)   # many output channels, few inputs
        wide = fully_connected(1, 8, 2048)   # few output channels, many inputs
        (tall_rows, _), _ = best_array_shape(tall, total_pes=256, dataflow="HB")
        (wide_rows, _), _ = best_array_shape(wide, total_pes=256, dataflow="HB")
        assert tall_rows > wide_rows


class TestFlexibleArrayCostModel:
    def test_interface_matches_fixed_model(self):
        model = FlexibleArrayCostModel(total_pes=2048, dataflow="HB", sg_bytes=146 * 1024)
        estimate = model.evaluate(conv2d(1, 64, 64, 28, 28, 3, 3))
        assert estimate.no_stall_latency_cycles > 0
        assert estimate.required_bw_gbps > 0
        assert estimate.total_pes == 2048

    def test_results_are_cached_per_layer(self):
        model = FlexibleArrayCostModel(total_pes=512, dataflow="HB")
        layer = fully_connected(4, 128, 128)
        first = model.evaluate(layer)
        second = model.evaluate(layer)
        assert first is second

    def test_chosen_shape_multiplies_to_budget(self):
        model = FlexibleArrayCostModel(total_pes=512, dataflow="LB")
        rows, cols = model.chosen_shape(conv2d(1, 32, 32, 28, 28, 3, 3))
        assert rows * cols == 512

    def test_flexible_beats_fixed_on_awkward_shapes(self):
        # A layer whose channel counts align poorly with a 32x64 array.
        layer = conv2d(1, 48, 24, 20, 20, 3, 3)
        fixed = AnalyticalCostModel(32, 64, "HB", sg_bytes=146 * 1024).evaluate(layer)
        flexible = FlexibleArrayCostModel(total_pes=2048, dataflow="HB", sg_bytes=146 * 1024).evaluate(layer)
        assert flexible.no_stall_latency_cycles <= fixed.no_stall_latency_cycles

    def test_rejects_bad_budget(self):
        with pytest.raises(CostModelError):
            FlexibleArrayCostModel(total_pes=-1, dataflow="HB")
