"""Tests for the analytical cost model."""

import pytest

from repro.costmodel import AnalyticalCostModel
from repro.exceptions import CostModelError
from repro.workloads.layers import conv2d, fully_connected
from repro.workloads.models import get_model


def _hb_model(rows=32, cols=64, sg_kb=146):
    return AnalyticalCostModel(pe_rows=rows, pe_cols=cols, dataflow="HB", sg_bytes=sg_kb * 1024)


def _lb_model(rows=32, cols=64, sg_kb=110):
    return AnalyticalCostModel(pe_rows=rows, pe_cols=cols, dataflow="LB", sg_bytes=sg_kb * 1024)


class TestConstruction:
    def test_rejects_bad_array(self):
        with pytest.raises(CostModelError):
            AnalyticalCostModel(pe_rows=0, pe_cols=64, dataflow="HB")

    def test_rejects_negative_buffers(self):
        with pytest.raises(CostModelError):
            AnalyticalCostModel(pe_rows=8, pe_cols=8, dataflow="HB", sg_bytes=-1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(CostModelError):
            AnalyticalCostModel(pe_rows=8, pe_cols=8, dataflow="HB", frequency_hz=0)

    def test_rejects_bad_weight_reuse(self):
        with pytest.raises(CostModelError):
            AnalyticalCostModel(pe_rows=8, pe_cols=8, dataflow="HB", weight_reuse_jobs=0.5)

    def test_total_pes(self):
        assert _hb_model(32, 64).total_pes == 2048


class TestLatency:
    def test_latency_positive_and_at_least_compute_bound(self):
        model = _hb_model()
        layer = conv2d(1, 256, 256, 14, 14, 3, 3)
        estimate = model.evaluate(layer)
        assert estimate.no_stall_latency_cycles >= layer.macs / model.total_pes

    def test_more_pes_means_lower_latency(self):
        layer = conv2d(1, 256, 256, 14, 14, 3, 3)
        small = _hb_model(rows=32).evaluate(layer)
        large = _hb_model(rows=128).evaluate(layer)
        assert large.no_stall_latency_cycles < small.no_stall_latency_cycles

    def test_fc_much_slower_on_lb_than_hb(self):
        layer = fully_connected(64, 768, 768)
        hb = _hb_model().evaluate(layer)
        lb = _lb_model().evaluate(layer)
        assert lb.no_stall_latency_cycles > 10 * hb.no_stall_latency_cycles

    def test_conv_comparable_between_styles(self):
        layer = conv2d(1, 64, 64, 56, 56, 3, 3)
        hb = _hb_model().evaluate(layer)
        lb = _lb_model().evaluate(layer)
        assert lb.no_stall_latency_cycles < 5 * hb.no_stall_latency_cycles

    def test_utilization_bounded_by_one(self):
        model = _hb_model()
        for layer in get_model("mobilenet_v2")[:20]:
            estimate = model.evaluate(layer)
            assert 0.0 < estimate.utilization <= 1.0


class TestTrafficAndBandwidth:
    def test_traffic_at_least_compulsory(self):
        model = _hb_model()
        layer = conv2d(1, 64, 64, 28, 28, 3, 3)
        estimate = model.evaluate(layer)
        compulsory = layer.weight_elements + layer.input_elements + layer.output_elements
        assert estimate.dram_traffic_bytes >= compulsory

    def test_lb_traffic_not_higher_than_hb_for_fc(self):
        layer = fully_connected(128, 1024, 1024)
        hb = _hb_model().evaluate(layer)
        lb = _lb_model().evaluate(layer)
        assert lb.dram_traffic_bytes <= hb.dram_traffic_bytes

    def test_lb_required_bw_much_lower_for_fc(self):
        layer = fully_connected(64, 768, 768)
        hb = _hb_model().evaluate(layer)
        lb = _lb_model().evaluate(layer)
        assert lb.required_bw_gbps < hb.required_bw_gbps / 10

    def test_weight_reuse_reduces_traffic(self):
        layer = fully_connected(4, 1024, 1024)
        base = AnalyticalCostModel(32, 64, "HB", sg_bytes=146 * 1024).evaluate(layer)
        amortized = AnalyticalCostModel(32, 64, "HB", sg_bytes=146 * 1024, weight_reuse_jobs=8).evaluate(layer)
        assert amortized.dram_traffic_bytes < base.dram_traffic_bytes

    def test_required_bw_consistent_with_traffic_and_latency(self):
        model = _hb_model()
        layer = conv2d(1, 128, 128, 28, 28, 3, 3)
        estimate = model.evaluate(layer)
        expected = estimate.dram_traffic_bytes / (estimate.no_stall_latency_cycles / model.frequency_hz) / 1e9
        assert estimate.required_bw_gbps == pytest.approx(expected, rel=1e-9)

    def test_recommendation_layers_most_bandwidth_intensive(self):
        model = _hb_model()
        vision_bw = [model.evaluate(l).required_bw_gbps for l in get_model("resnet50")]
        recom_bw = [model.evaluate(l).required_bw_gbps for l in get_model("dlrm")]
        assert sum(recom_bw) / len(recom_bw) > sum(vision_bw) / len(vision_bw)


class TestDerivedQueries:
    def test_latency_with_sufficient_bandwidth_is_no_stall(self):
        model = _hb_model()
        layer = conv2d(1, 128, 128, 28, 28, 3, 3)
        estimate = model.evaluate(layer)
        assert model.latency_with_bandwidth(layer, estimate.required_bw_gbps * 2) == pytest.approx(
            estimate.no_stall_latency_cycles
        )

    def test_latency_scales_with_bandwidth_deficit(self):
        model = _hb_model()
        layer = fully_connected(64, 1024, 1024)
        estimate = model.evaluate(layer)
        starved = model.latency_with_bandwidth(layer, estimate.required_bw_gbps / 4)
        assert starved == pytest.approx(4 * estimate.no_stall_latency_cycles, rel=1e-6)

    def test_latency_with_bandwidth_rejects_non_positive(self):
        model = _hb_model()
        with pytest.raises(CostModelError):
            model.latency_with_bandwidth(fully_connected(1, 8, 8), 0.0)

    def test_roofline_bounded_by_peak(self):
        model = _hb_model()
        layer = conv2d(1, 512, 512, 14, 14, 3, 3)
        attainable = model.roofline_attainable_flops(layer, available_bw_gbps=1000.0)
        assert attainable <= 2.0 * model.total_pes * model.frequency_hz + 1e-6

    def test_energy_positive_and_dram_dominated_for_fc(self):
        model = _hb_model()
        estimate = model.evaluate(fully_connected(1, 2048, 2048))
        assert estimate.energy_joules > 0
        assert estimate.energy.dram_joules > estimate.energy.mac_joules
