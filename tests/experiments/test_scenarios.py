"""Tests for the declarative scenario specs and the scenario registry."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import get_scale
from repro.experiments.campaign import CampaignRunner
from repro.experiments.runner import run_fig8_homogeneous, run_method_comparison
from repro.experiments.scenarios import (
    BudgetPolicy,
    Panel,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    spec_from_grid,
)
from repro.workloads import TaskType

TINY = get_scale("tiny")
SMOKE = get_scale("smoke")

PAPER_SCENARIOS = [
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "table5",
]


class TestBudgetPolicy:
    def test_non_rl_methods_get_full_budget(self):
        policy = BudgetPolicy()
        assert policy.budget_for("magma", SMOKE) == SMOKE.sampling_budget
        assert policy.budget_for("stdga", SMOKE) == SMOKE.sampling_budget

    @pytest.mark.parametrize("method", ["a2c", "ppo2", "rl-a2c", "rl-ppo2", "PPO2"])
    def test_rl_methods_and_aliases_get_reduced_budget(self, method):
        """Regression: RL-ness used to be a hard-coded name set in the fig
        runners, so a new alias of an RL optimizer silently received the full
        budget.  The policy now resolves through the optimizer registry."""
        assert BudgetPolicy().budget_for(method, SMOKE) == SMOKE.rl_sampling_budget

    def test_convergence_base(self):
        policy = BudgetPolicy(base="convergence")
        assert policy.budget_for("magma", SMOKE) == SMOKE.convergence_budget

    def test_rl_reduction_can_be_disabled(self):
        policy = BudgetPolicy(rl_reduction=False)
        assert policy.budget_for("a2c", SMOKE) == SMOKE.sampling_budget

    def test_unknown_base_rejected(self):
        with pytest.raises(ExperimentError):
            BudgetPolicy(base="galactic")


class TestSpecExpansion:
    def spec(self, **overrides):
        fields = dict(
            name="grid",
            description="test grid",
            settings=("S1", "S2"),
            bandwidths=(8.0, 16.0),
            tasks=("vision", "mix"),
            methods=("magma", "stdga"),
        )
        fields.update(overrides)
        return ScenarioSpec(**fields)

    def test_cross_product_size_and_order(self):
        cells = self.spec().expand(TINY)
        assert len(cells) == 2 * 2 * 2 * 2
        # Methods are the innermost axis (panel -> seed -> objective -> method).
        assert [c.method for c in cells[:2]] == ["magma", "stdga"]
        assert cells[0].setting == cells[1].setting == "S1"
        assert cells[0].method_index == 0 and cells[1].method_index == 1
        assert all(c.num_methods == 2 for c in cells)

    def test_budget_and_group_size_resolved_against_scale(self):
        cells = self.spec().expand(TINY)
        assert all(c.budget == TINY.sampling_budget for c in cells)
        assert all(c.group_size == TINY.group_size for c in cells)

    def test_panel_group_size_beats_spec_and_scale(self):
        spec = self.spec(
            panels=(Panel(label="p", setting="S1", bandwidth_gbps=8.0, task="mix", group_size=5),),
        )
        cells = spec.expand(TINY)
        assert all(c.group_size == 5 for c in cells)

    def test_seeds_offset_the_base_seed(self):
        cells = self.spec(seeds=(0, 1)).expand(TINY, base_seed=10)
        assert sorted({c.seed for c in cells}) == [10, 11]

    def test_objective_axis(self):
        cells = self.spec(objectives=("throughput", "edp")).expand(TINY)
        assert {c.objective for c in cells} == {"throughput", "edp"}

    def test_custom_scenarios_have_no_grid(self):
        with pytest.raises(ExperimentError):
            get_scenario("fig15").expand(TINY)


class TestCellFingerprints:
    def test_deterministic_across_expansions(self):
        spec = TestSpecExpansion().spec()
        first = [c.fingerprint() for c in spec.expand(TINY)]
        second = [c.fingerprint() for c in spec.expand(TINY)]
        assert first == second

    def test_distinct_across_cells(self):
        cells = TestSpecExpansion().spec(seeds=(0, 1)).expand(TINY)
        fingerprints = {c.fingerprint() for c in cells}
        assert len(fingerprints) == len(cells)

    def test_seed_changes_the_fingerprint(self):
        spec = TestSpecExpansion().spec()
        base = spec.expand(TINY, base_seed=0)
        shifted = spec.expand(TINY, base_seed=1)
        assert all(a.fingerprint() != b.fingerprint() for a, b in zip(base, shifted))


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        names = list_scenarios()
        for name in PAPER_SCENARIOS:
            assert name in names

    def test_extra_scenarios_beyond_the_paper(self):
        names = list_scenarios()
        assert "objective-sweep" in names and "seed-replicates" in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ExperimentError):
            get_scenario("fig99")

    def test_lookup_is_case_insensitive(self):
        assert get_scenario("FIG8").name == "fig8"


class TestCellExecutorEquivalence:
    def test_cells_match_direct_method_comparison(self):
        """A figure executed cell-by-cell through the campaign engine must be
        bit-identical to the direct multi-method comparison loop."""
        methods = ("herald-like", "magma")
        direct = run_method_comparison(
            "S2", 16.0, TaskType.MIX, methods=methods, scale=TINY, seed=4
        )
        spec = ScenarioSpec(
            name="equivalence",
            description="cells vs direct loop",
            settings=("S2",),
            bandwidths=(16.0,),
            tasks=("mix",),
            methods=methods,
        )
        engine = CampaignRunner(scale=TINY)
        via_cells = {}
        for cell in spec.expand(TINY, base_seed=4):
            result = engine.run_cell(cell)
            via_cells[result.optimizer_name] = result
        assert set(via_cells) == set(direct)
        for name in direct:
            assert via_cells[name].best_fitness == direct[name].best_fitness
            assert via_cells[name].samples_used == direct[name].samples_used
            assert via_cells[name].history == direct[name].history


class TestNormalizationFallback:
    def test_fig8_without_magma_records_fallback_reference(self):
        """Regression: ``methods=`` without MAGMA used to break normalization
        (the reference method was missing from the results)."""
        result = run_fig8_homogeneous(scale=TINY, methods=("herald-like", "stdga"), seed=0)
        for task, reference in result["normalized_reference"].items():
            assert reference in {"Herald-like", "stdGA"}
            assert result["normalized"][task][reference] == pytest.approx(1.0)
            # The fallback reference is the best method of the panel.
            assert max(result["normalized"][task].values()) == pytest.approx(1.0)

    def test_fig8_with_magma_still_normalises_against_magma(self):
        result = run_fig8_homogeneous(scale=TINY, methods=("herald-like", "magma"), seed=0)
        assert set(result["normalized_reference"].values()) == {"MAGMA"}


class TestGridSpecFromDict:
    def test_round_trip_fields(self):
        spec = spec_from_grid({
            "name": "demo",
            "settings": ["S1"],
            "tasks": ["mix"],
            "methods": ["magma"],
            "seeds": [0, 1],
            "budget": "convergence",
        })
        assert spec.name == "demo"
        assert spec.seeds == (0, 1)
        assert spec.budget_policy.base == "convergence"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ExperimentError):
            spec_from_grid({"setings": ["S1"]})

    def test_scalar_axes_are_wrapped_not_character_split(self):
        """Regression: tuple("S1") is ('S', '1') — a bare string axis must
        become a one-element axis, not a grid of bogus panels."""
        spec = spec_from_grid({"settings": "S1", "tasks": "vision", "seeds": "2"})
        assert spec.settings == ("S1",)
        assert spec.tasks == ("vision",)
        assert spec.seeds == (2,)
