"""Tests for the resumable campaign engine and its JSONL results store."""

import json

import pytest

from repro.core.analyzer import AnalysisTableCache
from repro.experiments import get_scale
from repro.experiments.campaign import CampaignResultsStore, CampaignRunner
from repro.experiments.scenarios import ScenarioSpec
from repro.utils.serialization import SearchResultSummary

TINY = get_scale("tiny")


@pytest.fixture()
def grid_spec():
    """A 2-setting x 2-task x 2-method grid (8 cells, 4 unique problems)."""
    return ScenarioSpec(
        name="grid",
        description="campaign test grid",
        settings=("S1", "S2"),
        bandwidths=(16.0,),
        tasks=("vision", "mix"),
        methods=("herald-like", "magma"),
    )


def fresh_engine():
    return CampaignRunner(scale=TINY, table_cache=AnalysisTableCache())


class TestSharedAnalysisTables:
    def test_table_built_once_per_unique_group_platform(self, grid_spec, tmp_path):
        engine = fresh_engine()
        report = engine.run([grid_spec], store=str(tmp_path / "out.jsonl"))
        assert report.cells_run == 8
        # 2 settings x 2 tasks = 4 unique (group, platform) pairs; the other
        # 4 cells (second method) hit the shared cache.
        assert report.table_builds == 4
        assert report.table_hits == 4

    def test_bandwidth_sweep_shares_one_table(self):
        """The analysis table is bandwidth-independent, so sweeping the system
        bandwidth of one setting must not rebuild it."""
        spec = ScenarioSpec(
            name="bw-sweep",
            description="one setting, several bandwidths",
            settings=("S2",),
            bandwidths=(1.0, 4.0, 16.0),
            tasks=("mix",),
            methods=("magma",),
        )
        engine = fresh_engine()
        report = engine.run([spec])
        assert report.cells_run == 3
        assert report.table_builds == 1
        assert report.table_hits == 2

    def test_identical_cells_run_once_per_campaign(self, grid_spec):
        engine = fresh_engine()
        report = engine.run([grid_spec, grid_spec])
        assert report.cells_run == 8
        assert report.cells_deduped == 8

    def test_identical_work_dedups_across_scenarios(self, grid_spec):
        """Cell fingerprints describe the work, not the scenario it belongs
        to: an overlapping grid registered under another name must not
        re-run the shared cells."""
        import dataclasses

        overlapping = dataclasses.replace(grid_spec, name="other", settings=("S1",))
        report = fresh_engine().run([grid_spec, overlapping])
        # 'other' expands to 4 cells (1 setting x 2 tasks x 2 methods), all
        # already covered by the first scenario.
        assert report.cells_total == 12
        assert report.cells_run == 8
        assert report.cells_deduped == 4


class TestResultsStore:
    def test_records_are_loadable_summaries(self, grid_spec, tmp_path):
        store = CampaignResultsStore(str(tmp_path / "out.jsonl"))
        fresh_engine().run([grid_spec], store=store)
        records = store.records()
        assert len(records) == 8
        for record in records:
            assert set(record) == {"fingerprint", "scenario", "cell", "result"}
            summary = SearchResultSummary.from_dict(record["result"])
            assert summary.throughput_gflops > 0
            assert summary.samples_used <= record["cell"]["budget"]

    def test_resume_skips_completed_cells_and_matches_uninterrupted_store(
        self, grid_spec, tmp_path
    ):
        full_path = tmp_path / "full.jsonl"
        fresh_engine().run([grid_spec], store=str(full_path))
        full_lines = full_path.read_text().splitlines()

        # Simulate an interruption after 3 completed cells.
        partial_path = tmp_path / "partial.jsonl"
        partial_path.write_text("\n".join(full_lines[:3]) + "\n")
        report = fresh_engine().run([grid_spec], store=str(partial_path), resume=True)
        assert report.cells_skipped == 3
        assert report.cells_run == 5
        assert partial_path.read_text() == full_path.read_text()

        # A second resume has nothing left to do.
        rerun = fresh_engine().run([grid_spec], store=str(partial_path), resume=True)
        assert rerun.cells_run == 0
        assert rerun.cells_skipped == 8

    def test_resume_repairs_a_torn_trailing_line(self, grid_spec, tmp_path):
        """A SIGKILL mid-append can leave a half-written last line; resume
        must drop it (re-running that cell) instead of crashing or
        corrupting later appends."""
        full_path = tmp_path / "full.jsonl"
        fresh_engine().run([grid_spec], store=str(full_path))
        full_text = full_path.read_text()
        full_lines = full_text.splitlines()

        torn_path = tmp_path / "torn.jsonl"
        torn_path.write_text("\n".join(full_lines[:3]) + "\n" + full_lines[3][: len(full_lines[3]) // 2])
        report = fresh_engine().run([grid_spec], store=str(torn_path), resume=True)
        assert report.cells_skipped == 3
        assert report.cells_run == 5
        assert torn_path.read_text() == full_text

    def test_fingerprint_scan_matches_full_parse_on_large_store(self, tmp_path):
        """``fingerprints()`` no longer parses whole records — on a large
        store the fast scan must agree exactly with the full JSON parse."""
        store = CampaignResultsStore(str(tmp_path / "large.jsonl"))
        expected = set()
        for i in range(3000):
            fingerprint = f"{i:032x}"
            store.append(
                fingerprint,
                "large-scenario",
                {"seed": i, "method": "magma", "budget": 10_000},
                {"best_fitness": float(i), "history": [float(j) for j in range(40)]},
            )
            expected.add(fingerprint)
        assert store.fingerprints() == expected
        assert store.fingerprints() == {
            record["fingerprint"] for record in store.records()
        }

    def test_non_resume_on_a_torn_store_still_refuses_cleanly(self, grid_spec, tmp_path):
        """Regression: the populated-store guard used to crash with a raw
        JSONDecodeError when the store ended in a torn line."""
        from repro.exceptions import ExperimentError

        path = tmp_path / "out.jsonl"
        fresh_engine().run([grid_spec], store=str(path))
        torn = path.read_text()[:-20]
        path.write_text(torn)
        with pytest.raises(ExperimentError):
            fresh_engine().run([grid_spec], store=str(path), resume=False)

    def test_non_resume_refuses_to_wipe_a_populated_store(self, grid_spec, tmp_path):
        """Hours of campaign results must not be silently truncated because
        --resume was omitted; starting over requires a fresh path."""
        from repro.exceptions import ExperimentError

        path = tmp_path / "out.jsonl"
        fresh_engine().run([grid_spec], store=str(path))
        before = path.read_text()
        with pytest.raises(ExperimentError):
            fresh_engine().run([grid_spec], store=str(path), resume=False)
        assert path.read_text() == before

    def test_non_resume_overwrites_an_empty_store_file(self, grid_spec, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("")
        report = fresh_engine().run([grid_spec], store=str(path))
        assert report.cells_run == 8

    def test_resume_into_a_fresh_nested_path(self, grid_spec, tmp_path):
        """--resume against a store that does not exist yet (including its
        directory) behaves like a fresh run instead of crashing mid-append."""
        path = tmp_path / "sub" / "dir" / "out.jsonl"
        report = fresh_engine().run([grid_spec], store=str(path), resume=True)
        assert report.cells_run == 8
        assert len(path.read_text().splitlines()) == 8

    def test_custom_scenarios_store_their_output(self, tmp_path):
        store = CampaignResultsStore(str(tmp_path / "out.jsonl"))
        report = fresh_engine().run(["fig15"], store=store)
        assert report.cells_total == report.cells_run == 1
        (record,) = store.records()
        assert record["cell"]["custom"] is True
        assert "finish_time_cycles" in record["result"]["output"]
        # Resuming skips the completed custom scenario too.
        rerun = fresh_engine().run(["fig15"], store=store, resume=True)
        assert rerun.cells_run == 0 and rerun.cells_skipped == 1

    def test_store_lines_are_plain_json(self, grid_spec, tmp_path):
        path = tmp_path / "out.jsonl"
        fresh_engine().run([grid_spec], store=str(path))
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert isinstance(record["fingerprint"], str)


class TestEngineByName:
    def test_registered_scenarios_run_by_name(self, tmp_path):
        report = fresh_engine().run(
            ["seed-replicates"], store=str(tmp_path / "out.jsonl"), base_seed=0
        )
        # 3 methods x 3 seeds on one panel.
        assert report.cells_total == 9
        assert report.cells_run == 9


class TestSeedReplicates:
    """The --seeds axis: replication before fingerprinting, stats after."""

    def test_seed_replicates_expand_every_grid_cell(self, grid_spec, tmp_path):
        report = fresh_engine().run(
            [grid_spec], store=str(tmp_path / "out.jsonl"), seed_replicates=2
        )
        assert report.cells_total == report.cells_run == 16

    def test_interrupted_multi_seed_campaign_resumes_byte_identical(
        self, grid_spec, tmp_path
    ):
        """Acceptance: an interrupted --seeds campaign resumed to completion
        is byte-identical to an uninterrupted one, with identical aggregate
        statistics."""
        from repro.experiments.stats import replicate_summary, rows_from_store

        full_path = tmp_path / "full.jsonl"
        fresh_engine().run([grid_spec], store=str(full_path), seed_replicates=2)
        full_lines = full_path.read_text().splitlines()
        assert len(full_lines) == 16

        # Simulate an interruption after 5 completed cells (mid-replicate).
        partial_path = tmp_path / "partial.jsonl"
        partial_path.write_text("\n".join(full_lines[:5]) + "\n")
        report = fresh_engine().run(
            [grid_spec], store=str(partial_path), resume=True, seed_replicates=2
        )
        assert report.cells_skipped == 5
        assert report.cells_run == 11
        assert partial_path.read_text() == full_path.read_text()

        full_stats = replicate_summary(rows_from_store(str(full_path)))
        resumed_stats = replicate_summary(rows_from_store(str(partial_path)))
        assert resumed_stats == full_stats

    def test_replicated_store_aggregates_with_uncertainty(self, grid_spec, tmp_path):
        from repro.experiments.stats import replicate_summary, rows_from_store

        path = tmp_path / "out.jsonl"
        fresh_engine().run([grid_spec], store=str(path), seed_replicates=3)
        summary = replicate_summary(rows_from_store(str(path)))
        assert summary["num_cells"] == 24
        assert summary["num_groups"] == 8
        for group in summary["replicates"]:
            assert group["seeds"] == [0, 1, 2]
            stats = group["metrics"]["throughput_gflops"]
            assert stats["count"] == 3
            assert stats["min"] <= stats["mean"] <= stats["max"]
            assert stats["std"] >= 0.0
        agreement = summary["cross_seed_agreement"]
        assert agreement
        for info in agreement.values():
            assert info["num_seeds"] == 3
            assert 0.0 < info["agreement"] <= 1.0
            assert info["winner"] in {"herald-like", "magma"}

    def test_replication_happens_before_fingerprinting(self, grid_spec, tmp_path):
        """A single-seed store is a strict prefix-compatible subset of the
        replicated one: seed 0 cells share fingerprints across both runs."""
        single = tmp_path / "single.jsonl"
        multi = tmp_path / "multi.jsonl"
        fresh_engine().run([grid_spec], store=str(single))
        fresh_engine().run([grid_spec], store=str(multi), seed_replicates=2)
        single_fps = {json.loads(l)["fingerprint"] for l in single.read_text().splitlines()}
        multi_fps = {json.loads(l)["fingerprint"] for l in multi.read_text().splitlines()}
        assert single_fps < multi_fps

    def test_non_positive_replicate_count_rejected(self, grid_spec):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="positive"):
            fresh_engine().run([grid_spec], seed_replicates=0)
