"""Campaign store-backend tests: resume convergence beyond ``jsonl:``.

The campaign engine's resume guarantee — an interrupted campaign resumed to
completion holds exactly the records an uninterrupted run would — was
proven byte-for-byte on the JSONL store.  These tests extend it to the
``sqlite:`` and ``tcp://`` backends at *record* granularity (neither is a
text file), and pin that all three backends converge to the same records.
"""

import pytest

from repro.core.analyzer import AnalysisTableCache
from repro.exceptions import ExperimentError
from repro.experiments import get_scale
from repro.experiments.campaign import CampaignResultsStore, CampaignRunner
from repro.experiments.scenarios import ScenarioSpec
from repro.service.netstore import NetworkStoreServer

TINY = get_scale("tiny")
TOKEN = "campaign-secret"


@pytest.fixture()
def grid_spec():
    """A 1-setting x 2-task x 2-method grid (4 cells)."""
    return ScenarioSpec(
        name="grid",
        description="campaign backend test grid",
        settings=("S1",),
        bandwidths=(16.0,),
        tasks=("vision", "mix"),
        methods=("herald-like", "magma"),
    )


def fresh_engine():
    return CampaignRunner(scale=TINY, table_cache=AnalysisTableCache())


@pytest.fixture(params=["sqlite", "tcp"])
def store_url(request, tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_RPC_TOKEN", raising=False)
    if request.param == "sqlite":
        yield f"sqlite:{tmp_path / 'campaign.sqlite3'}"
    else:
        server = NetworkStoreServer(
            f"sqlite:{tmp_path / 'backing.sqlite3'}", token=TOKEN
        ).start()
        yield f"{server.url}?token={TOKEN}"
        server.shutdown()


class TestResumeOnSharedBackends:
    def _reference_records(self, grid_spec, tmp_path):
        """The records an uninterrupted jsonl-store campaign produces."""
        path = tmp_path / "reference.jsonl"
        fresh_engine().run([grid_spec], store=str(path), resume=False)
        with CampaignResultsStore(str(path)) as store:
            return store.records()

    def test_interrupted_campaign_resumes_to_identical_records(
        self, grid_spec, tmp_path, store_url
    ):
        reference = self._reference_records(grid_spec, tmp_path)

        # Simulate an interruption after 2 completed cells: seed the store
        # with a prefix of the reference records, then resume.
        with CampaignResultsStore(store_url) as partial:
            for record in reference[:2]:
                partial.append_record(record)
        report = fresh_engine().run([grid_spec], store=store_url, resume=True)
        assert report.cells_skipped == 2
        assert report.cells_run == 2

        with CampaignResultsStore(store_url) as store:
            assert store.records() == reference

        # A second resume has nothing left to do and changes nothing.
        rerun = fresh_engine().run([grid_spec], store=store_url, resume=True)
        assert rerun.cells_run == 0
        assert rerun.cells_skipped == 4
        with CampaignResultsStore(store_url) as store:
            assert store.records() == reference

    def test_fresh_campaign_matches_jsonl_reference(
        self, grid_spec, tmp_path, store_url
    ):
        reference = self._reference_records(grid_spec, tmp_path)
        fresh_engine().run([grid_spec], store=store_url, resume=False)
        with CampaignResultsStore(store_url) as store:
            assert store.records() == reference

    def test_non_resume_refuses_to_wipe_a_populated_shared_store(
        self, grid_spec, store_url
    ):
        with CampaignResultsStore(store_url) as store:
            store.append_record({"fingerprint": "prior", "result": {}})
        with pytest.raises(ExperimentError, match="resume"):
            fresh_engine().run([grid_spec], store=store_url, resume=False)
