"""Smoke tests for the per-figure experiment runners (at the smoke scale).

These tests confirm that every experiment runs end to end and that the key
qualitative relationships the paper reports hold at reduced scale.  The
benchmark harness exercises the same runners at a larger scale.
"""

import pytest

from repro.experiments import get_scale
from repro.experiments.runner import (
    run_fig7_job_analysis,
    run_fig13_subaccel_combinations,
    run_fig15_schedule_visualization,
    run_fig16_operator_ablation,
    run_fig17_group_size,
    run_method_comparison,
    run_table5_warm_start,
)
from repro.workloads import TaskType

SMOKE = get_scale("smoke")


class TestFig7:
    def test_characteristics_match_paper_ordering(self):
        result = run_fig7_job_analysis()
        per_task = result["per_task"]
        # Recommendation jobs are the most bandwidth-hungry; vision the most
        # compute-heavy (Fig. 7 of the paper).
        assert per_task["recommendation"]["hb_required_bw_gbps"] > per_task["vision"]["hb_required_bw_gbps"]
        assert per_task["vision"]["hb_latency_cycles"] > per_task["recommendation"]["hb_latency_cycles"]
        for task in per_task.values():
            # The LB style always trades latency for bandwidth.
            assert task["lb_latency_cycles"] > task["hb_latency_cycles"]
            assert task["lb_required_bw_gbps"] < task["hb_required_bw_gbps"]

    def test_per_model_rows_cover_requested_models(self):
        result = run_fig7_job_analysis()
        assert {"resnet50", "gpt2", "dlrm"} <= set(result["per_model"])


class TestMethodComparison:
    def test_magma_beats_aimt_on_heterogeneous_platform(self):
        results = run_method_comparison(
            "S2", 16.0, TaskType.MIX,
            methods=["ai-mt-like", "magma"],
            scale=SMOKE, seed=0,
        )
        assert results["MAGMA"].throughput_gflops > results["AI-MT-like"].throughput_gflops

    def test_all_requested_methods_present(self):
        results = run_method_comparison(
            "S1", 16.0, TaskType.VISION,
            methods=["herald-like", "stdga", "magma"],
            scale=SMOKE, seed=0,
        )
        assert set(results) == {"Herald-like", "stdGA", "MAGMA"}


class TestFig13:
    def test_structure_and_normalisation(self):
        result = run_fig13_subaccel_combinations(scale=SMOKE, bandwidths=(1.0,), settings=("S3", "S4"))
        assert set(result["job_analysis"]) == {"S3", "S4"}
        normalized = result["normalized"][1.0]
        assert max(normalized.values()) == pytest.approx(1.0)

    def test_heterogeneous_requires_less_bandwidth(self):
        result = run_fig13_subaccel_combinations(scale=SMOKE, bandwidths=(1.0,), settings=("S3", "S4"))
        s3_bw = result["job_analysis"]["S3"]["mix"]["avg_required_bw_gbps"]
        s4_bw = result["job_analysis"]["S4"]["mix"]["avg_required_bw_gbps"]
        assert s4_bw < s3_bw


class TestFig15:
    def test_magma_finishes_no_later_than_herald(self):
        result = run_fig15_schedule_visualization(scale=SMOKE, seed=0)
        finish = result["finish_time_cycles"]
        assert finish["MAGMA"] <= finish["Herald-like"] * 1.05
        assert set(result["gantt"]) == {"Herald-like", "MAGMA"}


class TestFig16:
    def test_all_three_variants_present(self):
        result = run_fig16_operator_ablation(scale=SMOKE, seed=0)
        for panel in result["final_values"].values():
            assert set(panel) == {"MAGMA-mut", "MAGMA-mut+gen", "MAGMA"}
            assert all(value > 0 for value in panel.values())


class TestMethodComparison:
    def test_duplicate_methods_are_suffixed_not_overwritten(self):
        """Regression: requesting the same method twice silently dropped one
        result from the comparison dict (and from the CLI report)."""
        results = run_method_comparison(
            "S2", 16.0, TaskType.MIX, methods=("magma", "magma"), scale=SMOKE, seed=0
        )
        assert set(results) == {"MAGMA", "MAGMA#2"}

    def test_eval_backends_agree_end_to_end(self):
        per_backend = {
            backend: run_method_comparison(
                "S2", 16.0, TaskType.MIX, methods=("magma", "random"),
                scale=SMOKE, seed=0, eval_backend=backend,
            )
            for backend in ("scalar", "batch")
        }
        for name in per_backend["scalar"]:
            assert (
                per_backend["scalar"][name].best_fitness
                == per_backend["batch"][name].best_fitness
            )


class TestFig17:
    def test_group_size_sweep_normalised(self):
        result = run_fig17_group_size(scale=SMOKE, group_sizes=(4, 8, 16), seed=0)
        assert set(result["throughput"]) == {4, 8, 16}
        assert result["normalized"][16] == pytest.approx(1.0)


class TestTable5:
    def test_warm_start_ordering(self):
        result = run_table5_warm_start(scale=SMOKE, num_instances=1, seed=0)
        average = result["average"]
        # Warm-started runs recover at least as much performance as raw random
        # initialisation, and the full run defines the reference value of 1.
        assert average["trf_full"] == pytest.approx(1.0)
        assert average["trf_30_ep"] <= 1.5
        assert average["trf_1_ep"] >= average["raw"] * 0.5


class TestSeedReplicatedFigures:
    """Multi-seed runs of the figure scenarios report uncertainty; single-
    seed runs keep their historical output shape."""

    def _fig9_small(self, seeds):
        from dataclasses import replace

        from repro.experiments.runner import FIG9
        from repro.experiments.scenarios import run_scenario, with_seed_replicates

        spec = replace(FIG9, methods=("herald-like", "magma"))
        if seeds > 1:
            spec = with_seed_replicates(spec, seeds)
        return run_scenario(spec, scale=get_scale("tiny"), seed=0)

    def test_single_seed_output_has_no_replicate_keys(self):
        output = self._fig9_small(seeds=1)
        assert "replicates" not in output and "seeds" not in output
        assert "cross_seed_agreement" not in output

    def test_multi_seed_output_aggregates_with_uncertainty(self):
        output = self._fig9_small(seeds=2)
        assert output["seeds"] == [0, 1]
        for label, per_method in output["replicates"].items():
            for method, stats in per_method.items():
                assert stats["count"] == 2
                assert stats["min"] <= stats["mean"] <= stats["max"]
                # The normalised table is built from the cross-seed means.
                expected = stats["mean"] / output["absolute"][label][
                    output["normalized_reference"][label]
                ]
                assert output["normalized"][label][method] == pytest.approx(expected)
        assert output["cross_seed_agreement"]
        for info in output["cross_seed_agreement"].values():
            assert info["num_seeds"] == 2
            assert 0.0 < info["agreement"] <= 1.0

    def test_seed_replicates_scenario_reports_uncertainty_table(self):
        from repro.experiments.scenarios import run_scenario

        output = run_scenario("seed-replicates", scale=get_scale("tiny"), seed=0)
        assert output["seeds"] == [0, 1, 2]
        assert len(output["replicates"]) == 3  # one group per method
        for group in output["replicates"]:
            assert group["seeds"] == [0, 1, 2]
            assert group["metrics"]["throughput_gflops"]["count"] == 3
        assert "mean" in output["table"] and "std" in output["table"]
        assert output["cross_seed_agreement"]
