"""Tests for the experiment scales."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.settings import SCALE_ENV_VAR, ExperimentScale, get_scale, list_scales


class TestScales:
    def test_four_scales_available(self):
        assert list_scales() == ["paper", "small", "smoke", "tiny"]

    def test_paper_scale_matches_the_paper(self):
        paper = get_scale("paper")
        assert paper.group_size == 100
        assert paper.sampling_budget == 10_000
        assert paper.population_size == 100

    def test_default_is_small(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert get_scale().name == "small"

    def test_environment_variable_respected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "smoke")
        assert get_scale().name == "smoke"

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "paper")
        assert get_scale("smoke").name == "smoke"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError):
            get_scale("galactic")

    def test_scale_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(
                name="broken",
                group_size=0,
                sampling_budget=10,
                rl_sampling_budget=10,
                convergence_budget=10,
                exhaustive_samples=10,
                population_size=10,
            )

    def test_scales_are_ordered_by_effort(self):
        tiny, smoke, small, paper = (
            get_scale("tiny"), get_scale("smoke"), get_scale("small"), get_scale("paper")
        )
        assert tiny.sampling_budget < smoke.sampling_budget < small.sampling_budget < paper.sampling_budget
        assert tiny.group_size < smoke.group_size < small.group_size < paper.group_size
